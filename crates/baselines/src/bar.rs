//! BAR — Balance-Aware and Locality-Driven task scheduling (Jin,
//! Luo, Song, Dong, Xiong — CCGrid 2011), as summarized in the
//! paper's §3: "the authors introduce a function that calculates
//! completion time with respect to data locality. Their algorithm
//! comprises two phases: at first, they attempt to assign all the
//! tasks so they are entirely local, only to iteratively produce
//! alternative execution scenarios which reduce completion time on
//! account of the locality."
//!
//! BAR is a *batch* algorithm: it plans an assignment for a set of
//! jobs at once. In our streaming engine the master buffers arriving
//! jobs for a short batching window, then plans:
//!
//! 1. **Phase 1 (locality first)** — every job goes to a worker
//!    believed to hold its data (least-loaded such worker), or to the
//!    globally least-loaded worker when no holder exists.
//! 2. **Phase 2 (balance)** — repeatedly take a job from the worker
//!    with the highest planned completion time and move it to the
//!    worker where the *cluster* completion time improves the most,
//!    paying the job's remote cost; stop when no move helps.
//!
//! Cost model: local job = `size / rw_speed`; remote job additionally
//! pays `size / net_speed`. The master estimates with the nominal
//! speeds it knows from configuration.

use std::collections::HashMap;

use crossbid_crossflow::{
    Allocator, Job, MasterScheduler, ObedientPolicy, SchedCtx, WorkerId, WorkerPolicy,
    WorkerToMaster,
};
use crossbid_metrics::SchedulerKind;
use crossbid_simcore::SimDuration;

use crate::locality_map::LocalityMap;

/// Master-known per-worker speeds (BAR's completion-time function
/// needs them; the real system would read them from cluster config).
#[derive(Debug, Clone, Copy)]
pub struct BarWorkerSpeeds {
    /// Network bytes/sec.
    pub net_bps: f64,
    /// Read/write bytes/sec.
    pub rw_bps: f64,
}

impl Default for BarWorkerSpeeds {
    fn default() -> Self {
        // The evaluation's "average" worker.
        BarWorkerSpeeds {
            net_bps: 20.0e6,
            rw_bps: 100.0e6,
        }
    }
}

/// The BAR planning core, independent of the engine (unit-testable).
#[derive(Debug)]
pub struct BarPlanner {
    speeds: Vec<BarWorkerSpeeds>,
}

impl BarPlanner {
    /// Planner over `n` workers with uniform speeds.
    pub fn uniform(n: usize, speeds: BarWorkerSpeeds) -> Self {
        BarPlanner {
            speeds: vec![speeds; n],
        }
    }

    /// Planner with per-worker speeds.
    pub fn new(speeds: Vec<BarWorkerSpeeds>) -> Self {
        BarPlanner { speeds }
    }

    fn n(&self) -> usize {
        self.speeds.len()
    }

    /// Cost of `job` on worker `w`, local or remote, seconds.
    fn cost(&self, job: &Job, w: usize, local: bool) -> f64 {
        let s = self.speeds[w];
        let scan = job.work_bytes as f64 / s.rw_bps;
        let fetch = if local {
            0.0
        } else {
            job.resource_bytes() as f64 / s.net_bps
        };
        scan + fetch + job.cpu_secs
    }

    /// Plan an assignment for `jobs`, given believed locality and
    /// current per-worker committed load (seconds). Returns
    /// `(assignment, planned makespan)` where `assignment[i]` is the
    /// worker for `jobs[i]`.
    pub fn plan(
        &self,
        jobs: &[Job],
        locality: &LocalityMap,
        base_load: &[f64],
    ) -> (Vec<WorkerId>, f64) {
        assert_eq!(base_load.len(), self.n());
        let n = self.n();
        let mut load = base_load.to_vec();
        let mut assign: Vec<usize> = Vec::with_capacity(jobs.len());

        // Phase 1: locality first.
        for job in jobs {
            let holders: Vec<usize> = (0..n)
                .filter(|w| locality.is_local(WorkerId(*w as u32), job))
                .collect();
            let candidates: &[usize] = if holders.is_empty() {
                // No holder anywhere: balance-only placement.
                &(0..n).collect::<Vec<_>>()
            } else {
                &holders
            };
            let w = *candidates
                .iter()
                .min_by(|a, b| {
                    let ca = load[**a] + self.cost(job, **a, !holders.is_empty());
                    let cb = load[**b] + self.cost(job, **b, !holders.is_empty());
                    ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty candidates");
            let local = holders.contains(&w);
            load[w] += self.cost(job, w, local);
            assign.push(w);
        }

        // Phase 2: iteratively trade locality for completion time.
        loop {
            let bottleneck = (0..n)
                .max_by(|a, b| {
                    load[*a]
                        .partial_cmp(&load[*b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty");
            let makespan = load[bottleneck];
            let mut best: Option<(usize, usize, f64)> = None; // (job idx, target, new makespan)
            for (ji, job) in jobs.iter().enumerate() {
                if assign[ji] != bottleneck {
                    continue;
                }
                let cur_local = locality.is_local(WorkerId(bottleneck as u32), job);
                let removed = load[bottleneck] - self.cost(job, bottleneck, cur_local);
                for w in 0..n {
                    if w == bottleneck {
                        continue;
                    }
                    let tgt_local = locality.is_local(WorkerId(w as u32), job);
                    let added = load[w] + self.cost(job, w, tgt_local);
                    // New cluster makespan if this move happens.
                    let mut new_makespan: f64 = added.max(removed);
                    for (o, l) in load.iter().enumerate() {
                        if o != w && o != bottleneck {
                            new_makespan = new_makespan.max(*l);
                        }
                    }
                    if new_makespan + 1e-9 < best.map_or(makespan, |b| b.2) {
                        best = Some((ji, w, new_makespan));
                    }
                }
            }
            match best {
                Some((ji, w, _)) => {
                    let job = &jobs[ji];
                    let from = assign[ji];
                    let from_local = locality.is_local(WorkerId(from as u32), job);
                    let to_local = locality.is_local(WorkerId(w as u32), job);
                    load[from] -= self.cost(job, from, from_local);
                    load[w] += self.cost(job, w, to_local);
                    assign[ji] = w;
                }
                None => break,
            }
        }

        let makespan = load.iter().cloned().fold(0.0f64, f64::max);
        (
            assign.into_iter().map(|w| WorkerId(w as u32)).collect(),
            makespan,
        )
    }
}

/// The BAR master: buffers jobs for a batching window, then plans and
/// pushes the batch.
pub struct BarMaster {
    window: SimDuration,
    planner_speeds: BarWorkerSpeeds,
    pending: Vec<Job>,
    timer: Option<u64>,
    map: LocalityMap,
    /// Outstanding planned seconds per worker (decays on completion).
    committed: HashMap<WorkerId, f64>,
}

impl BarMaster {
    /// Create with the given batching window.
    pub fn new(window: SimDuration, speeds: BarWorkerSpeeds) -> Self {
        BarMaster {
            window,
            planner_speeds: speeds,
            pending: Vec::new(),
            timer: None,
            map: LocalityMap::new(),
            committed: HashMap::new(),
        }
    }

    fn flush(&mut self, ctx: &mut SchedCtx) {
        if self.pending.is_empty() {
            return;
        }
        let n = ctx.worker_count();
        if n == 0 {
            // Everyone is down; retry after another window.
            let token = ctx.set_timer(self.window);
            self.timer = Some(token);
            return;
        }
        let planner = BarPlanner::uniform(n, self.planner_speeds);
        let base: Vec<f64> = (0..n)
            .map(|w| {
                self.committed
                    .get(&WorkerId(w as u32))
                    .copied()
                    .unwrap_or(0.0)
            })
            .collect();
        let jobs = std::mem::take(&mut self.pending);
        let (assignment, _) = planner.plan(&jobs, &self.map, &base);
        for (job, w) in jobs.into_iter().zip(assignment) {
            let local = self.map.is_local(w, &job);
            let cost = planner.cost(&job, w.0 as usize, local);
            *self.committed.entry(w).or_insert(0.0) += cost;
            self.map.note_assignment(w, &job);
            ctx.assign(w, job);
        }
    }
}

impl MasterScheduler for BarMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Bar
    }

    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        self.pending.push(job);
        if self.timer.is_none() {
            let token = ctx.set_timer(self.window);
            self.timer = Some(token);
        }
    }

    fn on_worker_message(&mut self, _from: WorkerId, _msg: WorkerToMaster, _ctx: &mut SchedCtx) {}

    fn on_timer(&mut self, token: u64, ctx: &mut SchedCtx) {
        if self.timer == Some(token) {
            self.timer = None;
            self.flush(ctx);
        }
    }

    fn on_job_done(&mut self, worker: WorkerId, job: &Job, _ctx: &mut SchedCtx) {
        self.map.note_completion(worker, job);
        if let Some(c) = self.committed.get_mut(&worker) {
            // Approximate decay by the job's local cost.
            let planner = BarPlanner::uniform(1, self.planner_speeds);
            *c = (*c - planner.cost(job, 0, true)).max(0.0);
        }
    }
}

/// Bundled BAR allocator.
#[derive(Debug, Clone, Copy)]
pub struct BarAllocator {
    /// Batching window before each planning round.
    pub window: SimDuration,
    /// The speeds BAR's cost function assumes.
    pub speeds: BarWorkerSpeeds,
}

impl Default for BarAllocator {
    fn default() -> Self {
        BarAllocator {
            window: SimDuration::from_secs(5),
            speeds: BarWorkerSpeeds::default(),
        }
    }
}

impl Allocator for BarAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Bar
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(BarMaster::new(self.window, self.speeds))
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        Box::new(ObedientPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::{JobId, Payload, ResourceRef, TaskId};
    use crossbid_storage::ObjectId;

    fn job(id: u64, repo: u64, mb: u64) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: Some(ResourceRef {
                id: ObjectId(repo),
                bytes: mb * 1_000_000,
            }),
            work_bytes: mb * 1_000_000,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    #[test]
    fn phase1_prefers_holders() {
        let planner = BarPlanner::uniform(3, BarWorkerSpeeds::default());
        let mut map = LocalityMap::new();
        map.note_completion(WorkerId(2), &job(0, 7, 100));
        let jobs = vec![job(1, 7, 100)];
        let (assign, _) = planner.plan(&jobs, &map, &[0.0; 3]);
        assert_eq!(assign, vec![WorkerId(2)]);
    }

    #[test]
    fn phase2_breaks_locality_when_it_pays() {
        // Worker 0 holds everything, but piling ten 100 MB jobs on it
        // is worse than paying some remote fetches.
        let planner = BarPlanner::uniform(3, BarWorkerSpeeds::default());
        let mut map = LocalityMap::new();
        for r in 0..10u64 {
            map.note_completion(WorkerId(0), &job(100 + r, r, 100));
        }
        let jobs: Vec<Job> = (0..10).map(|r| job(r, r, 100)).collect();
        let (assign, makespan) = planner.plan(&jobs, &map, &[0.0; 3]);
        let on_w0 = assign.iter().filter(|w| **w == WorkerId(0)).count();
        assert!(on_w0 < 10, "some jobs must move off the hot holder");
        // All-local-on-one-worker makespan would be 10 × 1 s = 10 s.
        assert!(
            makespan < 10.0,
            "rebalancing must beat all-local: {makespan}"
        );
    }

    #[test]
    fn phase2_keeps_locality_when_remote_cost_dominates() {
        // Two jobs, huge fetches: moving either off its holder costs
        // far more than queueing.
        let planner = BarPlanner::uniform(2, BarWorkerSpeeds::default());
        let mut map = LocalityMap::new();
        map.note_completion(WorkerId(0), &job(100, 1, 1000));
        let jobs = vec![job(1, 1, 1000), job(2, 1, 1000)];
        let (assign, _) = planner.plan(&jobs, &map, &[0.0; 2]);
        // Scan = 10 s each (20 s queued) vs remote = 50 + 10 s: both
        // stay on the holder.
        assert_eq!(assign, vec![WorkerId(0), WorkerId(0)]);
    }

    #[test]
    fn unknown_resources_balance_by_load() {
        let planner = BarPlanner::uniform(2, BarWorkerSpeeds::default());
        let map = LocalityMap::new();
        let jobs: Vec<Job> = (0..4).map(|r| job(r, r, 100)).collect();
        let (assign, _) = planner.plan(&jobs, &map, &[0.0; 2]);
        let on_w0 = assign.iter().filter(|w| **w == WorkerId(0)).count();
        assert_eq!(on_w0, 2, "even split when nothing is local");
    }

    #[test]
    fn base_load_shifts_assignments() {
        let planner = BarPlanner::uniform(2, BarWorkerSpeeds::default());
        let map = LocalityMap::new();
        let jobs = vec![job(1, 1, 100)];
        // Worker 0 already has 100 s of planned work.
        let (assign, _) = planner.plan(&jobs, &map, &[100.0, 0.0]);
        assert_eq!(assign, vec![WorkerId(1)]);
    }
}
