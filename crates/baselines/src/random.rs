//! Uniformly random immediate assignment — the sanity floor every
//! locality-aware scheduler must beat on locality metrics.

use crossbid_crossflow::{
    Allocator, Job, MasterScheduler, ObedientPolicy, SchedCtx, WorkerId, WorkerPolicy,
    WorkerToMaster,
};
use crossbid_metrics::SchedulerKind;

/// The random master.
#[derive(Debug, Default)]
pub struct RandomMaster;

impl MasterScheduler for RandomMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Random
    }

    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        let w = ctx.arbitrary_worker();
        ctx.assign(w, job);
    }

    fn on_worker_message(&mut self, _from: WorkerId, _msg: WorkerToMaster, _ctx: &mut SchedCtx) {}
}

/// Bundled random allocator.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomAllocator;

impl Allocator for RandomAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Random
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(RandomMaster)
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        Box::new(ObedientPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::scheduler::WorkerHandle;
    use crossbid_crossflow::{JobId, Payload, SchedAction, TaskId};
    use crossbid_simcore::{RngStream, SimTime};

    #[test]
    fn every_job_is_assigned_to_some_worker() {
        let workers: Vec<WorkerHandle> = (0..4)
            .map(|i| WorkerHandle {
                id: WorkerId(i),
                name: format!("w{i}"),
            })
            .collect();
        let mut rng = RngStream::from_seed(5);
        let mut token = 0;
        let mut m = RandomMaster;
        let mut counts = [0u32; 4];
        for i in 0..200 {
            let mut ctx = SchedCtx::new(SimTime::ZERO, &workers, &mut rng, &mut token);
            m.on_job(
                Job {
                    id: JobId(i),
                    task: TaskId(0),
                    resource: None,
                    work_bytes: 0,
                    cpu_secs: 0.0,
                    payload: Payload::None,
                },
                &mut ctx,
            );
            let a = ctx.take_actions();
            match &a[0] {
                SchedAction::Assign { worker, .. } => counts[worker.0 as usize] += 1,
                other => panic!("{other:?}"),
            }
        }
        // All workers used, roughly uniformly.
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 20, "worker {i} got only {c} of 200");
        }
    }
}
