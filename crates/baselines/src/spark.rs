//! Spark-like centralized schedulers.

use std::collections::HashMap;

use crossbid_crossflow::{
    Allocator, Job, JobId, MasterScheduler, ObedientPolicy, SchedCtx, WorkerId, WorkerPolicy,
    WorkerToMaster,
};
use crossbid_metrics::SchedulerKind;
use crossbid_simcore::SimDuration;

use crate::locality_map::LocalityMap;

/// Spark as the paper describes it for the MSR comparison (§4): every
/// job is assigned round-robin, "considering all workers equal" and
/// ignoring run-time locality entirely.
///
/// With `stage_barrier` enabled (the Figure 2 configuration), jobs are
/// released in synchronous waves of one job per worker — modelling
/// Spark's stage-oriented batch execution, where a stage's stragglers
/// gate the next wave of tasks. Without it, jobs are pushed the moment
/// they arrive.
#[derive(Debug, Default)]
pub struct SparkStaticMaster {
    next: u32,
    stage_barrier: bool,
    pending: std::collections::VecDeque<Job>,
    wave_outstanding: usize,
}

impl SparkStaticMaster {
    /// Create; see type docs for `stage_barrier`.
    pub fn new(stage_barrier: bool) -> Self {
        SparkStaticMaster {
            stage_barrier,
            ..Default::default()
        }
    }

    fn assign_rr(&mut self, job: Job, ctx: &mut SchedCtx) {
        let n = ctx.worker_count() as u32;
        let w = WorkerId(self.next % n);
        self.next = (self.next + 1) % n;
        ctx.assign(w, job);
    }

    fn release_wave(&mut self, ctx: &mut SchedCtx) {
        if self.wave_outstanding > 0 {
            return;
        }
        let n = ctx.worker_count();
        for _ in 0..n {
            let Some(job) = self.pending.pop_front() else {
                break;
            };
            self.wave_outstanding += 1;
            self.assign_rr(job, ctx);
        }
    }
}

impl MasterScheduler for SparkStaticMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::SparkStatic
    }

    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        if self.stage_barrier {
            self.pending.push_back(job);
            self.release_wave(ctx);
        } else {
            self.assign_rr(job, ctx);
        }
    }

    fn on_worker_message(&mut self, _from: WorkerId, _msg: WorkerToMaster, _ctx: &mut SchedCtx) {}

    fn on_job_done(&mut self, _worker: WorkerId, _job: &Job, ctx: &mut SchedCtx) {
        if self.stage_barrier {
            self.wave_outstanding = self.wave_outstanding.saturating_sub(1);
            self.release_wave(ctx);
        }
    }
}

/// Bundled Spark-static allocator.
#[derive(Debug, Default, Clone, Copy)]
pub struct SparkStaticAllocator {
    /// Model Spark's synchronous stage execution (see
    /// [`SparkStaticMaster`]).
    pub stage_barrier: bool,
}

impl SparkStaticAllocator {
    /// The Figure 2 configuration: stage-synchronous waves.
    pub fn with_stage_barrier() -> Self {
        SparkStaticAllocator {
            stage_barrier: true,
        }
    }
}

impl Allocator for SparkStaticAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::SparkStatic
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(SparkStaticMaster::new(self.stage_barrier))
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        Box::new(ObedientPolicy)
    }
}

/// Spark's locality-wait mechanism (§3: "it attempts to schedule
/// tasks so that the maximum degree of locality is obtained. If that
/// is not possible, it will wait a threshold period of time before
/// reducing the level of locality for that particular task").
///
/// Our cluster model has two meaningful locality levels — a worker
/// that holds the data (NODE_LOCAL) and one that does not (ANY);
/// Spark's PROCESS/NODE/RACK distinctions collapse onto these. A job
/// whose believed-local workers are all saturated waits up to
/// `locality_wait`; then it degrades to the least-loaded worker.
pub struct SparkLocalityMaster {
    locality_wait: SimDuration,
    /// Max outstanding jobs per worker before it counts as saturated
    /// (Spark's executor slots).
    slots_per_worker: usize,
    map: LocalityMap,
    outstanding: HashMap<WorkerId, usize>,
    waiting: HashMap<u64, JobId>,
    held: HashMap<JobId, Job>,
}

impl SparkLocalityMaster {
    /// Create with the given wait threshold and per-worker slot count.
    pub fn new(locality_wait: SimDuration, slots_per_worker: usize) -> Self {
        SparkLocalityMaster {
            locality_wait,
            slots_per_worker: slots_per_worker.max(1),
            map: LocalityMap::new(),
            outstanding: HashMap::new(),
            waiting: HashMap::new(),
            held: HashMap::new(),
        }
    }

    fn load(&self, w: WorkerId) -> usize {
        self.outstanding.get(&w).copied().unwrap_or(0)
    }

    fn least_loaded(&self, ctx: &SchedCtx) -> WorkerId {
        ctx.workers()
            .iter()
            .map(|h| h.id)
            .min_by_key(|w| (self.load(*w), *w))
            .expect("non-empty roster")
    }

    fn assign_to(&mut self, w: WorkerId, job: Job, ctx: &mut SchedCtx) {
        *self.outstanding.entry(w).or_insert(0) += 1;
        self.map.note_assignment(w, &job);
        ctx.assign(w, job);
    }

    fn try_place(&mut self, job: Job, ctx: &mut SchedCtx) -> Option<Job> {
        if let Some(w) = self.map.best_local_worker(&job, |w| self.load(w)) {
            if self.load(w) < self.slots_per_worker {
                self.assign_to(w, job, ctx);
                return None;
            }
        } else if job.resource.is_none() {
            // CPU-only jobs have no locality constraint.
            let w = self.least_loaded(ctx);
            self.assign_to(w, job, ctx);
            return None;
        }
        Some(job)
    }
}

impl MasterScheduler for SparkLocalityMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::SparkLocality
    }

    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        match self.try_place(job, ctx) {
            None => {}
            Some(job) => {
                // No satisfiable locality: wait for the threshold,
                // then degrade.
                let token = ctx.set_timer(self.locality_wait);
                self.waiting.insert(token, job.id);
                self.held.insert(job.id, job);
            }
        }
    }

    fn on_worker_message(&mut self, _from: WorkerId, _msg: WorkerToMaster, _ctx: &mut SchedCtx) {}

    fn on_timer(&mut self, token: u64, ctx: &mut SchedCtx) {
        let Some(job_id) = self.waiting.remove(&token) else {
            return;
        };
        let Some(job) = self.held.remove(&job_id) else {
            return;
        };
        // One more locality attempt, then degrade to ANY.
        match self.try_place(job, ctx) {
            None => {}
            Some(job) => {
                let w = self.least_loaded(ctx);
                self.assign_to(w, job, ctx);
            }
        }
    }

    fn on_job_done(&mut self, worker: WorkerId, job: &Job, _ctx: &mut SchedCtx) {
        if let Some(c) = self.outstanding.get_mut(&worker) {
            *c = c.saturating_sub(1);
        }
        self.map.note_completion(worker, job);
    }
}

/// Bundled Spark-locality allocator.
#[derive(Debug, Clone, Copy)]
pub struct SparkLocalityAllocator {
    /// Locality wait threshold (Spark's `spark.locality.wait`,
    /// default 3 s).
    pub locality_wait: SimDuration,
    /// Executor slots per worker.
    pub slots_per_worker: usize,
}

impl Default for SparkLocalityAllocator {
    fn default() -> Self {
        SparkLocalityAllocator {
            locality_wait: SimDuration::from_secs(3),
            slots_per_worker: 2,
        }
    }
}

impl Allocator for SparkLocalityAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::SparkLocality
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(SparkLocalityMaster::new(
            self.locality_wait,
            self.slots_per_worker,
        ))
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        Box::new(ObedientPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::scheduler::WorkerHandle;
    use crossbid_crossflow::{Payload, ResourceRef, SchedAction, TaskId};
    use crossbid_simcore::{RngStream, SimTime};
    use crossbid_storage::ObjectId;

    fn mk_job(id: u64, r: Option<u64>) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: r.map(|r| ResourceRef {
                id: ObjectId(r),
                bytes: 100,
            }),
            work_bytes: 100,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    fn handles(n: u32) -> Vec<WorkerHandle> {
        (0..n)
            .map(|i| WorkerHandle {
                id: WorkerId(i),
                name: format!("w{i}"),
            })
            .collect()
    }

    fn drive<M: MasterScheduler, F: FnOnce(&mut M, &mut SchedCtx)>(
        m: &mut M,
        n: u32,
        f: F,
    ) -> Vec<SchedAction> {
        let workers = handles(n);
        let mut rng = RngStream::from_seed(0);
        let mut token = 100;
        let mut ctx = SchedCtx::new(SimTime::ZERO, &workers, &mut rng, &mut token);
        f(m, &mut ctx);
        ctx.take_actions()
    }

    #[test]
    fn spark_static_round_robins() {
        let mut m = SparkStaticMaster::default();
        let mut seen = Vec::new();
        for i in 0..6 {
            let a = drive(&mut m, 3, |m, ctx| m.on_job(mk_job(i, Some(1)), ctx));
            match &a[0] {
                SchedAction::Assign { worker, .. } => seen.push(worker.0),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn spark_locality_prefers_believed_holder() {
        let mut m = SparkLocalityMaster::new(SimDuration::from_secs(3), 2);
        // Job 1 has no known holder: a wait timer is set.
        let a = drive(&mut m, 3, |m, ctx| m.on_job(mk_job(1, Some(7)), ctx));
        assert!(matches!(a[0], SchedAction::Timer { .. }));
        // Timer fires: degrade to least-loaded.
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            _ => unreachable!(),
        };
        let a = drive(&mut m, 3, |m, ctx| m.on_timer(token, ctx));
        let w1 = match &a[0] {
            SchedAction::Assign { worker, .. } => *worker,
            other => panic!("{other:?}"),
        };
        // After completion, the holder is known: the next job for the
        // same resource goes straight there.
        drive(&mut m, 3, |m, ctx| {
            m.on_job_done(w1, &mk_job(1, Some(7)), ctx)
        });
        let a = drive(&mut m, 3, |m, ctx| m.on_job(mk_job(2, Some(7)), ctx));
        match &a[0] {
            SchedAction::Assign { worker, .. } => assert_eq!(*worker, w1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spark_locality_degrades_when_holder_saturated() {
        let mut m = SparkLocalityMaster::new(SimDuration::from_secs(3), 1);
        // Make worker 0 the holder of resource 7 with a full slot.
        drive(&mut m, 3, |m, ctx| {
            m.on_job_done(WorkerId(0), &mk_job(0, Some(7)), ctx)
        });
        let a = drive(&mut m, 3, |m, ctx| m.on_job(mk_job(1, Some(7)), ctx));
        assert!(matches!(
            a[0],
            SchedAction::Assign {
                worker: WorkerId(0),
                ..
            }
        ));
        // Worker 0 now saturated (slots=1, one outstanding): next job
        // waits…
        let a = drive(&mut m, 3, |m, ctx| m.on_job(mk_job(2, Some(7)), ctx));
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            ref other => panic!("{other:?}"),
        };
        // …and degrades to a non-local worker on expiry.
        let a = drive(&mut m, 3, |m, ctx| m.on_timer(token, ctx));
        match &a[0] {
            SchedAction::Assign { worker, .. } => assert_ne!(*worker, WorkerId(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cpu_only_jobs_skip_the_wait() {
        let mut m = SparkLocalityMaster::new(SimDuration::from_secs(3), 2);
        let a = drive(&mut m, 2, |m, ctx| m.on_job(mk_job(1, None), ctx));
        assert!(matches!(a[0], SchedAction::Assign { .. }));
    }
}
