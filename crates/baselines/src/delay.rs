//! Delay scheduling (Zaharia et al., EuroSys 2010), as summarized in
//! the paper's §3: "Some approaches attempt to delay job assignment
//! until an appropriate node is available. If that node is
//! unavailable, the allocation will be postponed, which can occur a
//! fixed number of times."
//!
//! Implementation: pull-based. When a worker asks for work, the master
//! scans the queue for a job believed local to that worker. If the
//! head job is not local anywhere available it accrues a *skip*; once
//! a job has been skipped `max_skips` times it is handed to the next
//! puller regardless of locality.

use std::collections::{HashMap, VecDeque};

use crossbid_crossflow::{
    Allocator, Job, JobId, MasterScheduler, ObedientPolicy, SchedCtx, WorkerId, WorkerPolicy,
    WorkerToMaster,
};
use crossbid_metrics::SchedulerKind;
use crossbid_simcore::SimDuration;

use crate::locality_map::LocalityMap;

/// The delay-scheduling master.
pub struct DelayMaster {
    max_skips: u32,
    heartbeat: SimDuration,
    queue: VecDeque<Job>,
    skips: HashMap<JobId, u32>,
    map: LocalityMap,
    /// Latest pending retry token per unsatisfied worker; stale timers
    /// are ignored by comparing tokens.
    waiting: HashMap<WorkerId, u64>,
    timers: HashMap<u64, WorkerId>,
}

impl DelayMaster {
    /// Create with the given skip budget (D in the original paper) and
    /// retry heartbeat.
    pub fn new(max_skips: u32, heartbeat: SimDuration) -> Self {
        DelayMaster {
            max_skips,
            heartbeat,
            queue: VecDeque::new(),
            skips: HashMap::new(),
            map: LocalityMap::new(),
            waiting: HashMap::new(),
            timers: HashMap::new(),
        }
    }

    fn serve(&mut self, w: WorkerId, ctx: &mut SchedCtx) {
        // 1. Any job believed local to this worker, scanning from the
        //    head (locality first).
        if let Some(pos) = self.queue.iter().position(|j| self.map.is_local(w, j)) {
            let job = self.queue.remove(pos).expect("valid position");
            self.skips.remove(&job.id);
            self.waiting.remove(&w);
            self.map.note_assignment(w, &job);
            ctx.assign(w, job);
            return;
        }
        // 2. The head job accrues a skip; if its budget is exhausted,
        //    assign it here anyway.
        if let Some(head) = self.queue.front() {
            let s = self.skips.entry(head.id).or_insert(0);
            *s += 1;
            if *s > self.max_skips {
                let job = self.queue.pop_front().expect("non-empty");
                self.skips.remove(&job.id);
                self.waiting.remove(&w);
                self.map.note_assignment(w, &job);
                ctx.assign(w, job);
                return;
            }
        }
        // 3. Nothing assigned: retry after a heartbeat (skips keep
        //    accruing, so the head job is eventually forced through).
        //    With an empty queue the worker just waits to be poked by
        //    the next arrival.
        if self.queue.is_empty() {
            self.waiting.insert(w, u64::MAX); // parked, no timer
        } else {
            let token = ctx.set_timer(self.heartbeat);
            self.waiting.insert(w, token);
            self.timers.insert(token, w);
        }
    }

    fn poke_waiting(&mut self, ctx: &mut SchedCtx) {
        let mut waiting: Vec<WorkerId> = self.waiting.keys().copied().collect();
        waiting.sort_unstable();
        for w in waiting {
            if self.queue.is_empty() {
                break;
            }
            self.serve(w, ctx);
        }
    }
}

impl MasterScheduler for DelayMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Delay
    }

    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        self.queue.push_back(job);
        self.poke_waiting(ctx);
    }

    fn on_worker_message(&mut self, from: WorkerId, msg: WorkerToMaster, ctx: &mut SchedCtx) {
        if let WorkerToMaster::Idle = msg {
            self.serve(from, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SchedCtx) {
        let Some(w) = self.timers.remove(&token) else {
            return;
        };
        // Only the worker's *latest* retry token counts; earlier
        // timers were superseded by an assignment or a newer retry.
        if self.waiting.get(&w) == Some(&token) {
            self.waiting.remove(&w);
            self.serve(w, ctx);
        }
    }

    fn on_job_done(&mut self, worker: WorkerId, job: &Job, ctx: &mut SchedCtx) {
        self.map.note_completion(worker, job);
        self.poke_waiting(ctx);
    }
}

/// Bundled delay-scheduling allocator.
#[derive(Debug, Clone, Copy)]
pub struct DelayAllocator {
    /// Skip budget before forcing a non-local assignment.
    pub max_skips: u32,
    /// Retry heartbeat for postponed workers.
    pub heartbeat: SimDuration,
}

impl Default for DelayAllocator {
    fn default() -> Self {
        DelayAllocator {
            max_skips: 3,
            heartbeat: SimDuration::from_secs(1),
        }
    }
}

impl Allocator for DelayAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Delay
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(DelayMaster::new(self.max_skips, self.heartbeat))
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        Box::new(ObedientPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::scheduler::WorkerHandle;
    use crossbid_crossflow::{Payload, ResourceRef, SchedAction, TaskId};
    use crossbid_simcore::{RngStream, SimTime};
    use crossbid_storage::ObjectId;

    fn mk_job(id: u64, r: u64) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: Some(ResourceRef {
                id: ObjectId(r),
                bytes: 100,
            }),
            work_bytes: 100,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    fn drive<F: FnOnce(&mut DelayMaster, &mut SchedCtx)>(
        m: &mut DelayMaster,
        f: F,
    ) -> Vec<SchedAction> {
        let workers: Vec<WorkerHandle> = (0..3)
            .map(|i| WorkerHandle {
                id: WorkerId(i),
                name: format!("w{i}"),
            })
            .collect();
        let mut rng = RngStream::from_seed(0);
        let mut token = 0;
        let mut ctx = SchedCtx::new(SimTime::ZERO, &workers, &mut rng, &mut token);
        f(m, &mut ctx);
        ctx.take_actions()
    }

    #[test]
    fn local_worker_gets_the_job_immediately() {
        let mut m = DelayMaster::new(3, SimDuration::from_secs(1));
        drive(&mut m, |m, ctx| {
            m.on_job_done(WorkerId(1), &mk_job(0, 7), ctx)
        });
        drive(&mut m, |m, ctx| m.on_job(mk_job(1, 7), ctx));
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(1), WorkerToMaster::Idle, ctx)
        });
        assert!(matches!(
            a[0],
            SchedAction::Assign {
                worker: WorkerId(1),
                ..
            }
        ));
    }

    #[test]
    fn non_local_pull_skips_until_budget_exhausted() {
        let mut m = DelayMaster::new(2, SimDuration::from_secs(1));
        drive(&mut m, |m, ctx| m.on_job(mk_job(1, 7), ctx));
        // Nobody is local to resource 7. Pulls 1 and 2 are skipped…
        for _ in 0..2 {
            let a = drive(&mut m, |m, ctx| {
                m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
            });
            assert_eq!(a.len(), 1, "job postponed, retry armed: {a:?}");
            assert!(matches!(a[0], SchedAction::Timer { .. }));
        }
        // …the third pull exceeds the budget and is forced.
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        assert!(matches!(
            a[0],
            SchedAction::Assign {
                worker: WorkerId(0),
                ..
            }
        ));
    }

    #[test]
    fn later_local_job_jumps_the_head() {
        let mut m = DelayMaster::new(5, SimDuration::from_secs(1));
        drive(&mut m, |m, ctx| {
            m.on_job_done(WorkerId(0), &mk_job(0, 9), ctx)
        });
        drive(&mut m, |m, ctx| {
            m.on_job(mk_job(1, 7), ctx); // non-local head
            m.on_job(mk_job(2, 9), ctx); // local to w0
        });
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        match &a[0] {
            SchedAction::Assign { job, .. } => assert_eq!(job.id, JobId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parked_workers_are_poked_by_arrivals() {
        let mut m = DelayMaster::new(0, SimDuration::from_secs(1));
        // Worker pulls on an empty queue: parked.
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(2), WorkerToMaster::Idle, ctx)
        });
        assert!(a.is_empty());
        // A job arrives: the parked worker is served (skip budget 0 →
        // forced non-local assignment on the second skip check).
        let a = drive(&mut m, |m, ctx| m.on_job(mk_job(1, 7), ctx));
        // max_skips=0 → first serve increments skip to 1 > 0 → assign.
        assert!(matches!(
            a[0],
            SchedAction::Assign {
                worker: WorkerId(2),
                ..
            }
        ));
    }
}
