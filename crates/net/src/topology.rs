//! Cluster topology and the control plane.
//!
//! The paper's infrastructure is a star: one master, one messaging
//! node, five workers, all geographically distributed AWS instances
//! whose "locations were randomly determined during configuration
//! startup" (§6.2). We model the consequence of that layout that the
//! scheduler can observe: per-pair control-message latency and
//! per-worker data-plane bandwidth to the external repository host.

use crossbid_simcore::{RngStream, SimDuration};

use crate::bandwidth::Bandwidth;
use crate::link::Link;
use crate::noise::NoiseModel;

/// Identifier of a node in the topology. `0` is the master; workers
/// are `1..=n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The master node.
    pub const MASTER: NodeId = NodeId(0);

    /// Worker with the given zero-based index.
    pub fn worker(idx: u32) -> NodeId {
        NodeId(idx + 1)
    }

    /// Zero-based worker index, or `None` for the master.
    pub fn worker_index(self) -> Option<u32> {
        self.0.checked_sub(1)
    }
}

/// Latency model for scheduler control messages. All bid requests,
/// bids, offers, accept/reject replies and assignments pay one
/// control-plane delay each way; the jitter term models the messaging
/// broker and geographic spread.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    base: SimDuration,
    jitter: SimDuration,
}

impl ControlPlane {
    /// Fixed base one-way latency plus uniform jitter in `[0, jitter]`.
    pub fn new(base: SimDuration, jitter: SimDuration) -> Self {
        ControlPlane { base, jitter }
    }

    /// A zero-latency control plane (unit tests).
    pub fn instant() -> Self {
        ControlPlane::new(SimDuration::ZERO, SimDuration::ZERO)
    }

    /// The default calibration: 40 ms base, up to 80 ms jitter —
    /// geographically spread instances behind a broker.
    pub fn evaluation_default() -> Self {
        ControlPlane::new(SimDuration::from_millis(40), SimDuration::from_millis(80))
    }

    /// Sample a one-way message delay.
    pub fn delay(&self, rng: &mut RngStream) -> SimDuration {
        if self.jitter.is_zero() {
            self.base
        } else {
            self.base + SimDuration::from_ticks(rng.below(self.jitter.ticks().max(1)))
        }
    }

    /// Base one-way latency (no jitter component).
    pub fn base(&self) -> SimDuration {
        self.base
    }
}

/// The full cluster layout: per-worker data links plus a shared
/// control plane.
#[derive(Debug, Clone)]
pub struct StarTopology {
    links: Vec<Link>,
    control: ControlPlane,
}

impl StarTopology {
    /// Build from explicit per-worker links.
    pub fn new(links: Vec<Link>, control: ControlPlane) -> Self {
        StarTopology { links, control }
    }

    /// Homogeneous topology: `n` workers with identical nominal
    /// bandwidth, data-plane latency and noise.
    pub fn homogeneous(
        n: usize,
        bw: Bandwidth,
        data_latency: SimDuration,
        noise: NoiseModel,
        control: ControlPlane,
    ) -> Self {
        StarTopology {
            links: (0..n)
                .map(|_| Link::new(bw, data_latency, noise.clone()))
                .collect(),
            control,
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.links.len()
    }

    /// The data link of worker `idx`.
    pub fn link(&self, idx: usize) -> &Link {
        &self.links[idx]
    }

    /// Mutable access to the data link of worker `idx`.
    pub fn link_mut(&mut self, idx: usize) -> &mut Link {
        &mut self.links[idx]
    }

    /// The shared control plane.
    pub fn control(&self) -> &ControlPlane {
        &self.control
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids() {
        assert_eq!(NodeId::MASTER.worker_index(), None);
        assert_eq!(NodeId::worker(0), NodeId(1));
        assert_eq!(NodeId::worker(4).worker_index(), Some(4));
        assert!(NodeId::MASTER < NodeId::worker(0));
    }

    #[test]
    fn control_plane_delay_bounds() {
        let cp = ControlPlane::new(SimDuration::from_millis(40), SimDuration::from_millis(80));
        let mut r = RngStream::from_seed(2);
        for _ in 0..1000 {
            let d = cp.delay(&mut r);
            assert!(d >= SimDuration::from_millis(40));
            assert!(d < SimDuration::from_millis(121));
        }
    }

    #[test]
    fn instant_control_plane() {
        let cp = ControlPlane::instant();
        let mut r = RngStream::from_seed(2);
        assert_eq!(cp.delay(&mut r), SimDuration::ZERO);
    }

    #[test]
    fn homogeneous_topology() {
        let topo = StarTopology::homogeneous(
            5,
            Bandwidth::mb_per_sec(20.0),
            SimDuration::from_millis(100),
            NoiseModel::None,
            ControlPlane::instant(),
        );
        assert_eq!(topo.worker_count(), 5);
        for i in 0..5 {
            assert_eq!(topo.link(i).nominal(), Bandwidth::mb_per_sec(20.0));
        }
    }

    #[test]
    fn links_are_independent() {
        let mut topo = StarTopology::homogeneous(
            2,
            Bandwidth::mb_per_sec(20.0),
            SimDuration::ZERO,
            NoiseModel::None,
            ControlPlane::instant(),
        );
        topo.link_mut(0).set_nominal(Bandwidth::mb_per_sec(100.0));
        assert_eq!(topo.link(0).nominal(), Bandwidth::mb_per_sec(100.0));
        assert_eq!(topo.link(1).nominal(), Bandwidth::mb_per_sec(20.0));
    }
}
