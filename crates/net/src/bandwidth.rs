//! Transfer rates.

use std::fmt;
use std::ops::{Div, Mul};

use crossbid_simcore::SimDuration;

/// Number of bytes in one megabyte as the paper uses it (decimal MB,
/// matching "MB/s" cloud bandwidth figures).
pub const BYTES_PER_MB: f64 = 1_000_000.0;

/// A non-negative transfer or processing rate in bytes per second.
///
/// Both network speeds ("divide the size of the repository by the
/// current network speed") and read/write speeds ("divide the
/// repository size by the current read/write speed") from the paper's
/// bid formulas are represented with this type.
#[derive(Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero rate — transfers never complete; useful as a sentinel for
    /// a dead link in fault-injection tests.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From raw bytes per second. Negative or non-finite input is
    /// clamped to zero.
    pub fn bytes_per_sec(b: f64) -> Self {
        if b.is_finite() && b > 0.0 {
            Bandwidth(b)
        } else {
            Bandwidth(0.0)
        }
    }

    /// From megabytes per second (the paper's unit).
    pub fn mb_per_sec(mb: f64) -> Self {
        Self::bytes_per_sec(mb * BYTES_PER_MB)
    }

    /// Rate in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Rate in megabytes per second.
    #[inline]
    pub fn as_mb_per_sec(self) -> f64 {
        self.0 / BYTES_PER_MB
    }

    /// True iff the rate is zero (nothing can be transferred).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// Time to move `bytes` at this rate. A zero rate yields
    /// [`SimDuration::MAX`] (the transfer never finishes).
    pub fn time_for(self, bytes: u64) -> SimDuration {
        if self.is_zero() {
            if bytes == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::MAX
            }
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.0)
        }
    }

    /// Scale the rate by a non-negative factor (noise multiplier or
    /// heterogeneity factor).
    pub fn scaled(self, k: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.0 * k)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, k: f64) -> Bandwidth {
        self.scaled(k)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, k: f64) -> Bandwidth {
        if k <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::bytes_per_sec(self.0 / k)
        }
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MB/s", self.as_mb_per_sec())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MB/s", self.as_mb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_constructor_matches_bytes() {
        assert_eq!(
            Bandwidth::mb_per_sec(20.0).as_bytes_per_sec(),
            20.0 * BYTES_PER_MB
        );
        assert!((Bandwidth::mb_per_sec(20.0).as_mb_per_sec() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time() {
        let bw = Bandwidth::mb_per_sec(10.0);
        // 100 MB at 10 MB/s = 10 s.
        let t = bw.time_for(100_000_000);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn zero_bandwidth_never_finishes() {
        assert_eq!(Bandwidth::ZERO.time_for(1), SimDuration::MAX);
        assert_eq!(Bandwidth::ZERO.time_for(0), SimDuration::ZERO);
        assert!(Bandwidth::ZERO.is_zero());
    }

    #[test]
    fn invalid_inputs_clamp() {
        assert!(Bandwidth::bytes_per_sec(-5.0).is_zero());
        assert!(Bandwidth::bytes_per_sec(f64::NAN).is_zero());
        assert!(Bandwidth::bytes_per_sec(f64::INFINITY).is_zero());
    }

    #[test]
    fn scaling() {
        let bw = Bandwidth::mb_per_sec(8.0);
        assert!((bw.scaled(0.5).as_mb_per_sec() - 4.0).abs() < 1e-9);
        assert!(((bw * 2.0).as_mb_per_sec() - 16.0).abs() < 1e-9);
        assert!(((bw / 4.0).as_mb_per_sec() - 2.0).abs() < 1e-9);
        assert!((bw / 0.0).is_zero());
        assert!(bw.scaled(-1.0).is_zero());
    }
}
