//! Data-plane links.
//!
//! A [`Link`] is a worker's connection to the repository host (GitHub
//! in the paper's MSR scenario). It carries a *nominal* bandwidth —
//! the value bids are computed from — and a [`NoiseModel`] that
//! disturbs the *actual* speed each time a transfer really happens.

use crossbid_simcore::{RngStream, SimDuration};

use crate::bandwidth::Bandwidth;
use crate::noise::{NoiseModel, NoiseSampler};

/// Result of actually performing a transfer over a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// Wall-clock (virtual) time the transfer took, including the
    /// link's setup latency.
    pub duration: SimDuration,
    /// The noisy speed that was actually achieved.
    pub achieved: Bandwidth,
    /// Bytes moved.
    pub bytes: u64,
}

impl TransferOutcome {
    /// Achieved rate in MB/s — what the paper's §6.4 workers observe
    /// and feed into their historic speed averages.
    pub fn achieved_mb_per_sec(&self) -> f64 {
        self.achieved.as_mb_per_sec()
    }
}

/// A point-to-point data connection with nominal speed, per-transfer
/// setup latency, and a noise scheme on the actual speed.
#[derive(Debug, Clone)]
pub struct Link {
    nominal: Bandwidth,
    latency: SimDuration,
    noise: NoiseSampler,
}

impl Link {
    /// Create a link with the given nominal bandwidth, setup latency
    /// (connection establishment, API round trip) and noise scheme.
    pub fn new(nominal: Bandwidth, latency: SimDuration, noise: NoiseModel) -> Self {
        Link {
            nominal,
            latency,
            noise: noise.sampler(),
        }
    }

    /// A noise-free, zero-latency link (unit tests).
    pub fn ideal(nominal: Bandwidth) -> Self {
        Link::new(nominal, SimDuration::ZERO, NoiseModel::None)
    }

    /// The nominal (believed) bandwidth of this link.
    pub fn nominal(&self) -> Bandwidth {
        self.nominal
    }

    /// Replace the nominal bandwidth (used to model reconfiguration
    /// and the `fast-slow` worker presets).
    pub fn set_nominal(&mut self, bw: Bandwidth) {
        self.nominal = bw;
    }

    /// Per-transfer setup latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// The *estimate* a worker would quote for transferring `bytes`:
    /// latency + size / nominal speed. This is Listing 2 line 4 of the
    /// paper ("dividing the size of the repository by the current
    /// network speed") and sees no noise.
    pub fn estimate(&self, bytes: u64) -> SimDuration {
        self.latency + self.nominal.time_for(bytes)
    }

    /// Actually transfer `bytes`, drawing a fresh noise multiplier.
    pub fn transfer(&mut self, bytes: u64, rng: &mut RngStream) -> TransferOutcome {
        let m = self.noise.sample(rng);
        let achieved = self.nominal.scaled(m);
        TransferOutcome {
            duration: self.latency + achieved.time_for(bytes),
            achieved,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_matches_estimate() {
        let mut l = Link::ideal(Bandwidth::mb_per_sec(10.0));
        let mut r = RngStream::from_seed(1);
        let out = l.transfer(50_000_000, &mut r);
        assert_eq!(out.duration, l.estimate(50_000_000));
        assert!((out.duration.as_secs_f64() - 5.0).abs() < 1e-6);
        assert_eq!(out.bytes, 50_000_000);
    }

    #[test]
    fn latency_is_added() {
        let l = Link::new(
            Bandwidth::mb_per_sec(10.0),
            SimDuration::from_millis(200),
            NoiseModel::None,
        );
        let est = l.estimate(10_000_000); // 1s transfer + 0.2s latency
        assert!((est.as_secs_f64() - 1.2).abs() < 1e-6);
        // Zero-byte transfer still pays the latency.
        assert_eq!(l.estimate(0), SimDuration::from_millis(200));
    }

    #[test]
    fn noise_changes_actual_but_not_estimate() {
        let model = NoiseModel::Uniform { lo: 0.5, hi: 0.9 };
        let mut l = Link::new(Bandwidth::mb_per_sec(10.0), SimDuration::ZERO, model);
        let mut r = RngStream::from_seed(3);
        let est = l.estimate(10_000_000);
        for _ in 0..50 {
            let out = l.transfer(10_000_000, &mut r);
            // Noise in [0.5, 0.9] always slows the transfer down.
            assert!(out.duration > est);
            assert!(out.achieved < l.nominal());
        }
        // Estimate unchanged by transfers.
        assert_eq!(l.estimate(10_000_000), est);
    }

    #[test]
    fn achieved_speed_reported() {
        let mut l = Link::ideal(Bandwidth::mb_per_sec(25.0));
        let mut r = RngStream::from_seed(5);
        let out = l.transfer(1_000_000, &mut r);
        assert!((out.achieved_mb_per_sec() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn dead_link_never_completes() {
        let mut l = Link::ideal(Bandwidth::ZERO);
        let mut r = RngStream::from_seed(5);
        assert_eq!(l.transfer(1, &mut r).duration, SimDuration::MAX);
    }

    #[test]
    fn set_nominal_affects_future_estimates() {
        let mut l = Link::ideal(Bandwidth::mb_per_sec(10.0));
        l.set_nominal(Bandwidth::mb_per_sec(20.0));
        assert!((l.estimate(20_000_000).as_secs_f64() - 1.0).abs() < 1e-6);
    }
}
