//! # crossbid-net
//!
//! Network substrate for the crossbid simulation.
//!
//! The paper's evaluation ran on geographically distributed AWS
//! instances whose "network and read/write speeds ... were subjected
//! to a noise scheme during job execution to simulate realistic
//! variations in network conditions" (§6.3.1). This crate models that
//! world explicitly:
//!
//! * [`Bandwidth`] — a transfer rate with MB/s constructors (the unit
//!   the paper reports).
//! * [`NoiseModel`] — the noise scheme applied to *actual* transfer
//!   and processing speeds, so that bids (computed from *believed*
//!   speeds) are systematically imperfect exactly as in the paper.
//! * [`Link`] — a worker's data-plane connection (to the repository
//!   host) combining nominal bandwidth, latency and noise.
//! * [`ControlPlane`] — latency model for master↔worker scheduler
//!   messages (bid requests, bids, offers, assignments).
//! * [`StarTopology`] — the 7-instance layout of the paper: one
//!   master, one messaging hub, N workers, plus an external data
//!   source (GitHub).

//! ```
//! use crossbid_net::{Bandwidth, Link, NoiseModel};
//! use crossbid_simcore::{RngStream, SimDuration};
//!
//! // A 20 MB/s link with 300 ms setup latency and the evaluation's
//! // noise scheme.
//! let mut link = Link::new(
//!     Bandwidth::mb_per_sec(20.0),
//!     SimDuration::from_millis(300),
//!     NoiseModel::evaluation_default(),
//! );
//! // The *estimate* a bid would quote (no noise): 0.3 + 100/20 s.
//! assert!((link.estimate(100_000_000).as_secs_f64() - 5.3).abs() < 1e-9);
//! // The *actual* transfer draws a noise multiplier.
//! let mut rng = RngStream::from_seed(1);
//! let out = link.transfer(100_000_000, &mut rng);
//! assert!(out.duration.as_secs_f64() > 4.0 && out.duration.as_secs_f64() < 8.0);
//! ```

pub mod bandwidth;
pub mod link;
pub mod noise;
pub mod topology;

pub use bandwidth::Bandwidth;
pub use link::{Link, TransferOutcome};
pub use noise::{MarkovNoise, NoiseModel};
pub use topology::{ControlPlane, NodeId, StarTopology};
