//! Noise schemes for actual (as opposed to believed) speeds.
//!
//! Paper §6.3.1: "to better replicate real-world network throttling
//! scenarios and ensure bidding costs differed from actual execution
//! times, the speeds were subjected to a noise scheme during job
//! execution". A [`NoiseModel`] produces a positive multiplier that is
//! applied to a nominal bandwidth each time a transfer or a processing
//! step actually executes. Bids never see the noise.

use crossbid_simcore::RngStream;

/// A sampled multiplicative disturbance of a nominal speed.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum NoiseModel {
    /// No noise: actual speed equals believed speed (useful for
    /// isolating scheduler behaviour in tests).
    #[default]
    None,
    /// Uniform multiplier in `[lo, hi]`; e.g. `Uniform { lo: 0.7,
    /// hi: 1.2 }` models mild throttling and occasional bursts.
    Uniform { lo: f64, hi: f64 },
    /// Log-normal multiplier with median 1 and shape `sigma`; heavier
    /// right tail models transient congestion.
    LogNormal { sigma: f64 },
    /// Two-state Markov-modulated noise ("good"/"degraded" link).
    /// Stays in the good state (multiplier 1) and occasionally drops
    /// into a degraded state with multiplier `degraded_factor`.
    Markov(MarkovNoise),
}

/// Parameters of the two-state Markov noise process.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MarkovNoise {
    /// Probability per sample of transitioning good → degraded.
    pub p_degrade: f64,
    /// Probability per sample of transitioning degraded → good.
    pub p_recover: f64,
    /// Speed multiplier while degraded (e.g. 0.25 = 4× slower).
    pub degraded_factor: f64,
}

impl NoiseModel {
    /// The default evaluation noise used throughout the reproduction:
    /// mild uniform throttling around the nominal speed.
    pub fn evaluation_default() -> Self {
        NoiseModel::Uniform { lo: 0.7, hi: 1.15 }
    }

    /// Create a stateful sampler for this model.
    pub fn sampler(&self) -> NoiseSampler {
        NoiseSampler {
            model: self.clone(),
            degraded: false,
        }
    }
}

/// Stateful sampler; state only matters for [`NoiseModel::Markov`].
#[derive(Debug, Clone)]
pub struct NoiseSampler {
    model: NoiseModel,
    degraded: bool,
}

impl NoiseSampler {
    /// Draw the next multiplier (always `> 0` for well-formed models,
    /// clamped to a tiny positive floor defensively).
    pub fn sample(&mut self, rng: &mut RngStream) -> f64 {
        let m = match &self.model {
            NoiseModel::None => 1.0,
            NoiseModel::Uniform { lo, hi } => rng.uniform(*lo, (*hi).max(*lo)),
            NoiseModel::LogNormal { sigma } => rng.log_normal(0.0, sigma.abs()),
            NoiseModel::Markov(p) => {
                if self.degraded {
                    if rng.chance(p.p_recover) {
                        self.degraded = false;
                    }
                } else if rng.chance(p.p_degrade) {
                    self.degraded = true;
                }
                if self.degraded {
                    p.degraded_factor
                } else {
                    1.0
                }
            }
        };
        m.max(1e-6)
    }

    /// Whether a Markov sampler is currently degraded (always false
    /// for other models).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::from_seed(0xBEEF)
    }

    #[test]
    fn none_is_identity() {
        let mut s = NoiseModel::None.sampler();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r), 1.0);
        }
    }

    #[test]
    fn uniform_stays_in_band() {
        let mut s = NoiseModel::Uniform { lo: 0.5, hi: 1.5 }.sampler();
        let mut r = rng();
        for _ in 0..1000 {
            let m = s.sample(&mut r);
            assert!((0.5..=1.5).contains(&m), "{m}");
        }
    }

    #[test]
    fn log_normal_median_near_one() {
        let mut s = NoiseModel::LogNormal { sigma: 0.3 }.sampler();
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001).map(|_| s.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn markov_visits_both_states() {
        let mut s = NoiseModel::Markov(MarkovNoise {
            p_degrade: 0.2,
            p_recover: 0.4,
            degraded_factor: 0.25,
        })
        .sampler();
        let mut r = rng();
        let samples: Vec<f64> = (0..2000).map(|_| s.sample(&mut r)).collect();
        let degraded = samples.iter().filter(|&&m| m == 0.25).count();
        let good = samples.iter().filter(|&&m| m == 1.0).count();
        assert_eq!(degraded + good, samples.len());
        // Stationary degraded fraction = p_d / (p_d + p_r) = 1/3.
        let frac = degraded as f64 / samples.len() as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.07, "frac {frac}");
    }

    #[test]
    fn markov_state_is_sticky() {
        let mut s = NoiseModel::Markov(MarkovNoise {
            p_degrade: 1.0,
            p_recover: 0.0,
            degraded_factor: 0.1,
        })
        .sampler();
        let mut r = rng();
        s.sample(&mut r);
        assert!(s.is_degraded());
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r), 0.1);
        }
    }

    #[test]
    fn samples_are_positive_even_for_weird_params() {
        let mut s = NoiseModel::Uniform { lo: -1.0, hi: -0.5 }.sampler();
        let mut r = rng();
        for _ in 0..100 {
            assert!(s.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = NoiseModel::evaluation_default();
        let a: Vec<f64> = {
            let mut s = model.sampler();
            let mut r = RngStream::from_seed(7);
            (0..32).map(|_| s.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut s = model.sampler();
            let mut r = RngStream::from_seed(7);
            (0..32).map(|_| s.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
