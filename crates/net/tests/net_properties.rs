//! Property-based tests of the network substrate.

use crossbid_net::{Bandwidth, ControlPlane, Link, NoiseModel};
use crossbid_simcore::{RngStream, SimDuration};
use proptest::prelude::*;

proptest! {
    /// Transfer time is monotone non-decreasing in bytes for a fixed
    /// link and noise draw sequence.
    #[test]
    fn estimate_is_monotone_in_bytes(
        mbps in 0.1f64..1000.0,
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
    ) {
        let link = Link::ideal(Bandwidth::mb_per_sec(mbps));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(link.estimate(lo) <= link.estimate(hi));
    }

    /// Actual transfers under uniform noise stay within the band the
    /// noise defines around the nominal duration.
    #[test]
    fn noisy_transfer_bounded_by_noise_band(
        seed: u64,
        mbps in 1.0f64..100.0,
        bytes in 1_000_000u64..1_000_000_000,
    ) {
        let model = NoiseModel::Uniform { lo: 0.5, hi: 2.0 };
        let mut link = Link::new(Bandwidth::mb_per_sec(mbps), SimDuration::ZERO, model);
        let nominal = Bandwidth::mb_per_sec(mbps).time_for(bytes).as_secs_f64();
        let mut rng = RngStream::from_seed(seed);
        for _ in 0..16 {
            let d = link.transfer(bytes, &mut rng).duration.as_secs_f64();
            // Speed multiplier in [0.5, 2] → duration in [nominal/2, 2·nominal].
            prop_assert!(d >= nominal / 2.0 - 1e-6, "{d} vs {nominal}");
            prop_assert!(d <= nominal * 2.0 + 1e-6, "{d} vs {nominal}");
        }
    }

    /// Control-plane delays are within [base, base + jitter].
    #[test]
    fn control_delay_bounds(seed: u64, base_ms in 0u64..500, jitter_ms in 0u64..500) {
        let cp = ControlPlane::new(
            SimDuration::from_millis(base_ms),
            SimDuration::from_millis(jitter_ms),
        );
        let mut rng = RngStream::from_seed(seed);
        for _ in 0..32 {
            let d = cp.delay(&mut rng);
            prop_assert!(d >= SimDuration::from_millis(base_ms));
            prop_assert!(d <= SimDuration::from_millis(base_ms + jitter_ms));
        }
    }

    /// Bandwidth scaling by k scales transfer times by 1/k.
    #[test]
    fn bandwidth_scaling_inverts_duration(
        mbps in 1.0f64..100.0,
        k in 0.1f64..10.0,
        bytes in 1_000_000u64..100_000_000,
    ) {
        let bw = Bandwidth::mb_per_sec(mbps);
        let t1 = bw.time_for(bytes).as_secs_f64();
        let t2 = bw.scaled(k).time_for(bytes).as_secs_f64();
        let expect = t1 / k;
        prop_assert!((t2 - expect).abs() < expect * 1e-6 + 1e-5, "{t2} vs {expect}");
    }
}
