//! Validation of the discrete-event substrate against queueing
//! theory: an M/M/1 queue built directly on [`EventQueue`] must
//! reproduce the analytic mean waiting time
//! `W_q = ρ / (μ − λ)` and utilization `ρ = λ/μ`.
//!
//! If this test holds, the event queue's ordering, the exponential
//! sampler and the virtual clock are all consistent — the foundation
//! everything above (workers, contests, transfers) relies on.

use crossbid_simcore::{EventQueue, RngStream, SimDuration, SimTime, Welford};

#[derive(Debug)]
enum Ev {
    Arrival,
    Departure,
}

struct Mm1Result {
    mean_wait: f64,
    utilization: f64,
    served: u64,
}

fn run_mm1(lambda: f64, mu: f64, n_customers: u64, seed: u64) -> Mm1Result {
    let mut q = EventQueue::new();
    let mut rng_arr = RngStream::from_seed(seed);
    let mut rng_srv = RngStream::from_seed(seed ^ 0xDEAD_BEEF);

    let mut queue: std::collections::VecDeque<SimTime> = Default::default();
    let mut busy = false;
    let mut busy_since = SimTime::ZERO;
    let mut busy_total = 0.0;
    let mut wait = Welford::new();
    let mut arrived = 0u64;
    let mut served = 0u64;

    q.schedule_in(
        SimDuration::from_secs_f64(rng_arr.exponential(1.0 / lambda)),
        Ev::Arrival,
    );
    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Arrival => {
                arrived += 1;
                if arrived < n_customers {
                    q.schedule_in(
                        SimDuration::from_secs_f64(rng_arr.exponential(1.0 / lambda)),
                        Ev::Arrival,
                    );
                }
                if busy {
                    queue.push_back(now);
                } else {
                    busy = true;
                    busy_since = now;
                    wait.push(0.0);
                    q.schedule_in(
                        SimDuration::from_secs_f64(rng_srv.exponential(1.0 / mu)),
                        Ev::Departure,
                    );
                }
            }
            Ev::Departure => {
                served += 1;
                if let Some(enq) = queue.pop_front() {
                    wait.push(now.saturating_since(enq).as_secs_f64());
                    q.schedule_in(
                        SimDuration::from_secs_f64(rng_srv.exponential(1.0 / mu)),
                        Ev::Departure,
                    );
                } else {
                    busy = false;
                    busy_total += now.saturating_since(busy_since).as_secs_f64();
                }
            }
        }
    }
    let end = q.now().as_secs_f64().max(1e-9);
    if busy {
        busy_total += q.now().saturating_since(busy_since).as_secs_f64();
    }
    Mm1Result {
        mean_wait: wait.mean(),
        utilization: busy_total / end,
        served,
    }
}

#[test]
fn mm1_matches_analytic_wait_and_utilization() {
    // ρ = 0.7: W_q = ρ / (μ − λ) = 0.7 / 0.3 ≈ 2.333 s at μ = 1.
    let lambda = 0.7;
    let mu = 1.0;
    let res = run_mm1(lambda, mu, 200_000, 42);
    assert_eq!(res.served, 200_000);
    let rho = lambda / mu;
    let wq = rho / (mu - lambda);
    assert!(
        (res.mean_wait - wq).abs() / wq < 0.05,
        "mean wait {:.3} vs theory {:.3}",
        res.mean_wait,
        wq
    );
    assert!(
        (res.utilization - rho).abs() < 0.02,
        "utilization {:.3} vs theory {:.3}",
        res.utilization,
        rho
    );
}

#[test]
fn mm1_light_load_has_tiny_waits() {
    // ρ = 0.2: W_q = 0.25 s.
    let res = run_mm1(0.2, 1.0, 100_000, 7);
    assert!(
        (res.mean_wait - 0.25).abs() < 0.03,
        "mean wait {:.3}",
        res.mean_wait
    );
}

#[test]
fn mm1_is_seed_deterministic() {
    let a = run_mm1(0.5, 1.0, 10_000, 11);
    let b = run_mm1(0.5, 1.0, 10_000, 11);
    assert_eq!(a.mean_wait.to_bits(), b.mean_wait.to_bits());
    assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
}
