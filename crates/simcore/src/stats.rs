//! Online statistics used by the metrics layer.
//!
//! * [`Welford`] — numerically stable streaming mean/variance.
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant
//!   signal (queue lengths, utilization).
//! * [`Histogram`] — fixed-boundary bucket histogram with quantile
//!   estimation, for latency/backlog distributions.

use crate::time::SimTime;

/// Streaming mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation (Bessel-corrected; 0 if n < 2).
    pub fn sample_std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of an approximate 95% confidence interval for the
    /// mean (normal approximation; 0 if n < 2).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.sample_std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average with first-observation
/// initialization (the estimator §7's bid learning builds on).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    n: u64,
}

impl Ewma {
    /// `alpha` is the weight of each new observation, clamped to
    /// `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(1e-9, 1.0),
            value: 0.0,
            n: 0,
        }
    }

    /// Fold in one observation. The first observation initializes the
    /// average directly (no bias toward zero).
    pub fn push(&mut self, x: f64) {
        if self.n == 0 {
            self.value = x;
        } else {
            self.value = (1.0 - self.alpha) * self.value + self.alpha * x;
        }
        self.n += 1;
    }

    /// Current average, or `default` before any observation.
    pub fn value_or(&self, default: f64) -> f64 {
        if self.n == 0 {
            default
        } else {
            self.value
        }
    }

    /// Observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. a queue
/// length sampled at change points.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// New accumulator; the signal is undefined until the first
    /// [`set`](Self::set).
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            start: SimTime::ZERO,
            started: false,
        }
    }

    /// Record that the signal takes value `value` from time `now` on.
    pub fn set(&mut self, now: SimTime, value: f64) {
        if self.started {
            debug_assert!(now >= self.last_time);
            let dt = now.saturating_since(self.last_time).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
        } else {
            self.start = now;
            self.started = true;
        }
        self.last_time = now;
        self.last_value = value;
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = if self.started { self.last_value } else { 0.0 };
        self.set(now, v + delta);
    }

    /// The time-weighted mean over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        let total = now.saturating_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        let tail = now.saturating_since(self.last_time).as_secs_f64();
        (self.weighted_sum + self.last_value * tail) / total
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Fixed-boundary bucket histogram.
///
/// Buckets are `(-inf, b0], (b0, b1], ..., (b_{k-1}, +inf)`. Quantiles
/// are estimated by linear interpolation inside the containing bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Create with the given strictly-increasing bucket boundaries.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            total: 0,
            sum: 0.0,
        }
    }

    /// Geometric boundaries `start, start*ratio, ...` (`k` boundaries).
    pub fn geometric(start: f64, ratio: f64, k: usize) -> Self {
        assert!(start > 0.0 && ratio > 1.0);
        let mut bounds = Vec::with_capacity(k);
        let mut b = start;
        for _ in 0..k {
            bounds.push(b);
            b *= ratio;
        }
        Histogram::new(bounds)
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b < x);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += x;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all recorded observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Estimate of quantile `q` in `[0, 1]`. Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Open-ended top bucket: report its lower bound.
                    return lo;
                };
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - cum) / c as f64
                };
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            cum = next;
        }
        *self.bounds.last().unwrap_or(&0.0)
    }

    /// Per-bucket counts (for rendering).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_nan());
        assert_eq!(w.ci95_half_width(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn ewma_initializes_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value_or(9.0), 9.0);
        e.push(4.0);
        assert_eq!(e.value_or(9.0), 4.0);
        e.push(8.0);
        assert_eq!(e.value_or(9.0), 6.0);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.push(7.0);
        }
        assert!((e.value_or(0.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_alpha_is_clamped() {
        let mut e = Ewma::new(5.0); // clamped to 1.0: last value wins
        e.push(1.0);
        e.push(2.0);
        assert_eq!(e.value_or(0.0), 2.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 2.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 4.0); // 2 for 10s
                                             // then 4 for 10s
        let avg = tw.average(SimTime::from_secs(30));
        assert!((avg - 2.0).abs() < 1e-12, "avg {avg}");
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new();
        tw.add(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(5), 1.0);
        tw.add(SimTime::from_secs(10), -2.0);
        let avg = tw.average(SimTime::from_secs(10));
        assert!((avg - 1.5).abs() < 1e-12, "avg {avg}");
    }

    #[test]
    fn time_weighted_before_start() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.average(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let mut tw = TimeWeighted::new();
        let t = SimTime::from_secs(3);
        tw.set(t, 7.0);
        assert_eq!(tw.average(t), 7.0);
        assert_eq!(tw.average(t + SimDuration::from_secs(1)), 7.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 5.0, 50.0, 500.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 138.875).abs() < 1e-9);
    }

    #[test]
    fn histogram_boundary_goes_low() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(1.0); // (-inf, 1] bucket
        assert_eq!(h.counts(), &[1, 0, 0]);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::geometric(1.0, 2.0, 12);
        let mut r = crate::rng::RngStream::from_seed(42);
        for _ in 0..10_000 {
            h.record(r.uniform(0.0, 2000.0));
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.50);
        let q99 = h.quantile(0.99);
        assert!(q25 <= q50 && q50 <= q99, "{q25} {q50} {q99}");
        // Median of U(0,2000) ≈ 1000 within bucket resolution.
        assert!((600.0..1600.0).contains(&q50), "q50 {q50}");
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(vec![2.0, 1.0]);
    }
}
