//! The event queue at the heart of the simulator.
//!
//! [`EventQueue`] is a time-ordered priority queue with a strict
//! determinism guarantee: events scheduled for the same instant are
//! delivered in the order they were scheduled (FIFO tie-break via a
//! monotonically increasing sequence number). The queue also tracks
//! the current virtual time, which advances to an event's timestamp
//! when it is popped.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Heap entry: ordering key plus a slab slot. Keeping the (possibly
/// large) payload out of the heap makes every sift swap a 24-byte
/// move instead of a whole-event memcpy — the heap is the hottest
/// data structure in a million-job run.
struct Scheduled {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    // Reversed so that BinaryHeap (a max-heap) pops the earliest event
    // first; ties broken by insertion order.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue parameterised over the event
/// payload type `E`.
///
/// Payloads live in a free-list slab (`slots`); the binary heap holds
/// only `(time, seq, slot)` keys. Popped slots are recycled, so the
/// steady-state run performs no per-event allocation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled>,
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    seq: u64,
    now: SimTime,
    popped: u64,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with `capacity` pre-allocated event slots, for
    /// callers that know the rough event volume up front (e.g. the
    /// engine pre-loading a whole arrival stream).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            clamped: 0,
        }
    }

    /// Current virtual time (the timestamp of the most recently popped
    /// event, or zero).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far (a cheap progress /
    /// complexity proxy used by the experiment harness).
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// How many events were scheduled into the past and silently
    /// clamped to `now`. Always zero in a correct run; a nonzero count
    /// means virtual time was rewritten somewhere and the run's timing
    /// is suspect.
    #[inline]
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in callers; the event is
    /// clamped to `now` so that virtual time never runs backwards, and
    /// debug builds assert. Release builds count the clamp instead (see
    /// [`EventQueue::clamped`]) so the rewrite of virtual time is never
    /// silent: the engine surfaces a nonzero count as a run anomaly.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let time = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(event);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than u32::MAX pending events");
                self.slots.push(Some(event));
                s
            }
        };
        self.heap.push(Scheduled { time, seq, slot });
    }

    /// Schedule `event` after a relative delay from the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at the current instant (delivered after all
    /// events already scheduled for this instant).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        self.popped += 1;
        let event = self.slots[s.slot as usize]
            .take()
            .expect("scheduled slot holds an event");
        self.free.push(s.slot);
        Some((s.time, event))
    }

    /// Drop all pending events (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.popped)
            .field("clamped", &self.clamped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut q = EventQueue::new();
        q.schedule_now("first");
        q.schedule_now("second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "jump");
        q.pop();
        q.schedule_in(SimDuration::from_secs(1), "later");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(11));
    }

    #[test]
    fn delivered_counter() {
        let mut q = EventQueue::new();
        for _ in 0..7 {
            q.schedule_now(());
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_delivered(), 7);
        assert!(q.is_empty());
    }

    #[test]
    fn in_order_scheduling_never_counts_a_clamp() {
        let mut q = EventQueue::with_capacity(8);
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_in(SimDuration::from_secs(2), "b");
        while q.pop().is_some() {}
        assert_eq!(q.clamped(), 0);
    }

    /// The debug assert catches past-time scheduling in development;
    /// this pins the release-mode behaviour (clamp + count) that the
    /// engine turns into a reported anomaly.
    #[cfg(not(debug_assertions))]
    #[test]
    fn past_time_scheduling_is_clamped_and_counted() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "jump");
        q.pop();
        q.schedule_at(SimTime::from_secs(3), "stale");
        assert_eq!(q.clamped(), 1);
        let (t, _) = q.pop().expect("clamped event still delivered");
        assert_eq!(t, SimTime::from_secs(10), "clamped to now, not dropped");
        assert_eq!(q.clamped(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_now(1);
        q.schedule_now(2);
        q.clear();
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always come out in non-decreasing time order, and
        /// same-time events preserve insertion order.
        #[test]
        fn ordering_invariant(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_ticks(*t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut seen_at_time: Vec<usize> = Vec::new();
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                if t != last_time {
                    seen_at_time.clear();
                    last_time = t;
                }
                if let Some(&prev) = seen_at_time.last() {
                    // FIFO among equal timestamps implies increasing
                    // insertion indices.
                    prop_assert!(idx > prev);
                }
                seen_at_time.push(idx);
            }
        }

        /// The queue delivers exactly the multiset of scheduled events.
        #[test]
        fn conservation(times in proptest::collection::vec(0u64..500, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_ticks(*t), i);
            }
            let mut got: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            got.sort_unstable();
            prop_assert_eq!(got, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
