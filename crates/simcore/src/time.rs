//! Virtual time for the discrete-event simulator.
//!
//! Both [`SimTime`] (an instant) and [`SimDuration`] (a span) are
//! integer microsecond counts. Integer ticks make event ordering exact
//! and reproducible across platforms; conversions to/from seconds as
//! `f64` exist only at the modelling boundary (bandwidths and sizes
//! are naturally real-valued).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of virtual-time ticks per second (1 tick = 1 µs).
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant in virtual time, measured in microseconds since the
/// start of the simulation.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * TICKS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from fractional seconds. Negative values saturate to
    /// zero; the caller is expected to pass non-negative times.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_ticks(s))
    }

    /// Raw microsecond ticks since the epoch.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked advance; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * TICKS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from fractional seconds, saturating at zero for
    /// negative inputs (costs are never negative).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_ticks(s))
    }

    /// Raw microsecond ticks.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True iff this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative factor (e.g. noise multipliers).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(secs_f64_to_ticks(self.as_secs_f64() * k))
    }
}

#[inline]
fn secs_f64_to_ticks(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    let t = s * TICKS_PER_SEC as f64;
    if t >= u64::MAX as f64 {
        u64::MAX
    } else {
        // Round to nearest tick so repeated f64 round-trips stay stable.
        (t + 0.5) as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_ticks(2_000_000));
        assert_eq!(SimTime::from_millis(1500), SimTime::from_secs_f64(1.5));
        assert_eq!(SimDuration::from_micros(250), SimDuration::from_ticks(250));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_secs_f64(), 12.5);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).ticks(), 0);
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        // Rounding to nearest tick.
        assert_eq!(
            SimDuration::from_micros(3).mul_f64(0.5),
            SimDuration::from_micros(2)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert!(SimDuration::from_micros(1) > SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}
