//! Deterministic, stream-separated randomness.
//!
//! Every stochastic component of the simulation (per-worker noise,
//! arrival processes, workload generation, tie-breaking) draws from
//! its own [`RngStream`], derived from a root seed and a stream
//! identifier through SplitMix64. Adding a new consumer of randomness
//! therefore never changes the numbers any existing consumer sees —
//! a property the reproduction tests rely on.
//!
//! `rand`'s `SmallRng` provides the underlying generator;
//! normal/log-normal variates are produced locally via Box–Muller so
//! we do not need the `rand_distr` crate.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — a tiny, well-mixed 64-bit hash used purely for
/// seed derivation (Steele et al., "Fast Splittable Pseudorandom
/// Number Generators").
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent per-stream seeds from a single root seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence { root }
    }

    /// The 64-bit seed for stream `stream`.
    pub fn seed_for(&self, stream: u64) -> u64 {
        let mut s = self.root ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        a ^ b.rotate_left(32)
    }

    /// A ready-to-use generator for stream `stream`.
    pub fn stream(&self, stream: u64) -> RngStream {
        RngStream::from_seed(self.seed_for(stream))
    }
}

/// A seeded random stream with the distribution helpers the simulation
/// needs.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: SmallRng,
    /// Cached second Box–Muller variate.
    gauss_spare: Option<f64>,
}

impl RngStream {
    /// Build directly from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            rng: SmallRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`. `lo == hi` returns `lo`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        if lo >= hi {
            lo
        } else {
            lo + (hi - lo) * self.unit()
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.rng.gen_range(0..n)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.rng.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Standard normal variate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        loop {
            // Polar method avoids trig and rejects (0,0).
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal variate with given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Log-normal variate with the *underlying* normal's parameters
    /// `mu` and `sigma` (so the median is `exp(mu)`).
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gaussian()).exp()
    }

    /// Exponential variate with the given mean (`mean = 1/λ`). Used by
    /// arrival processes. `mean <= 0` returns 0.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Avoid ln(0).
        let u = 1.0 - self.unit();
        -mean * u.ln()
    }

    /// Choose a uniformly random element of `slice`. Panics if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// Sample an index according to non-negative `weights`
    /// (categorical distribution). Panics if all weights are zero or
    /// the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        assert!(total > 0.0, "weighted_index with no positive weight");
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point slack: return the last positive-weight index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("checked above")
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let seq = SeedSequence::new(42);
        let mut a = seq.stream(7);
        let mut b = seq.stream(7);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn streams_are_independent() {
        let seq = SeedSequence::new(42);
        let a: Vec<u64> = {
            let mut r = seq.stream(0);
            (0..32).map(|_| r.below(1 << 30)).collect()
        };
        let b: Vec<u64> = {
            let mut r = seq.stream(1);
            (0..32).map(|_| r.below(1 << 30)).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn different_roots_differ() {
        let a = SeedSequence::new(1).seed_for(0);
        let b = SeedSequence::new(2).seed_for(0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = RngStream::from_seed(9);
        for _ in 0..1000 {
            let x = r.uniform(3.0, 5.0);
            assert!((3.0..5.0).contains(&x));
        }
        assert_eq!(r.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = RngStream::from_seed(1234);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = RngStream::from_seed(5);
        for _ in 0..1000 {
            assert!(r.log_normal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = RngStream::from_seed(77);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut r = RngStream::from_seed(3);
        for _ in 0..200 {
            let i = r.weighted_index(&[0.0, 1.0, 0.0, 2.0]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_index_rough_proportions() {
        let mut r = RngStream::from_seed(11);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = RngStream::from_seed(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::from_seed(1);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        RngStream::from_seed(0).below(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn seed_derivation_deterministic(root: u64, stream: u64) {
            let a = SeedSequence::new(root).seed_for(stream);
            let b = SeedSequence::new(root).seed_for(stream);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn uniform_stays_in_bounds(seed: u64, lo in -1e6f64..1e6, span in 0.0f64..1e6) {
            let mut r = RngStream::from_seed(seed);
            let hi = lo + span;
            let x = r.uniform(lo, hi);
            prop_assert!(x >= lo && (x < hi || span == 0.0));
        }

        #[test]
        fn shuffle_preserves_elements(seed: u64, mut v in proptest::collection::vec(0u32..1000, 0..50)) {
            let mut expect = v.clone();
            expect.sort_unstable();
            RngStream::from_seed(seed).shuffle(&mut v);
            v.sort_unstable();
            prop_assert_eq!(v, expect);
        }
    }
}
