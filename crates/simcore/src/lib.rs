//! # crossbid-simcore
//!
//! Deterministic discrete-event simulation (DES) substrate used by the
//! whole `crossbid` workspace.
//!
//! The paper evaluates its schedulers on a geographically distributed
//! AWS cluster. This crate replaces that hardware with a virtual-time
//! simulation engine whose behaviour is a pure function of its inputs
//! and a `u64` seed:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual
//!   clock with exact integer arithmetic (no floating-point drift in
//!   event ordering).
//! * [`EventQueue`] — priority queue of timestamped events with a
//!   deterministic FIFO tie-break for simultaneous events.
//! * [`rng`] — per-stream seeded random number generators so that
//!   adding a consumer of randomness never perturbs other streams.
//! * [`stats`] — online statistics (Welford mean/variance, time
//!   weighted averages, fixed-bucket histograms) used by the metrics
//!   layer.
//!
//! The engine is *polymorphic over the event payload*: higher layers
//! define their own event enum `E` and drive a
//! [`EventQueue<E>`] in a dispatch loop. This keeps the core free of
//! trait-object dispatch on the hot path.
//!
//! ```
//! use crossbid_simcore::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32), Stop }
//!
//! let mut q = EventQueue::new();
//! q.schedule_in(SimDuration::from_millis(5), Ev::Ping(1));
//! q.schedule_in(SimDuration::from_millis(1), Ev::Ping(0));
//! q.schedule_in(SimDuration::from_secs(1), Ev::Stop);
//!
//! let mut seen = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     if ev == Ev::Stop { break; }
//!     seen.push((t, ev));
//! }
//! assert_eq!(seen[0].0, SimTime::from_millis(1));
//! assert_eq!(q.now(), SimTime::from_secs(1));
//! ```

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::EventQueue;
pub use rng::{RngStream, SeedSequence};
pub use stats::{Ewma, Histogram, TimeWeighted, Welford};
pub use time::{SimDuration, SimTime};
