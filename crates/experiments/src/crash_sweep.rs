//! Crash sweep on the **real-threaded runtime**: the threaded
//! counterpart of [`extensions`](crate::extensions)' simulated
//! fault-tolerance table. For each scheduler we first run a healthy
//! reference, then re-run the same workload while crashing 1, 2, …
//! workers at 25 % of the healthy makespan — real threads going
//! silent, the master detecting them and redistributing the stranded
//! backlog. Reported per cell: makespan, jobs completed, jobs
//! redistributed, accumulated downtime.

use crossbid_crossflow::{
    run_threaded_output, FaultPlan, RunMeta, ThreadedConfig, ThreadedScheduler, WorkerId, Workflow,
};
use crossbid_metrics::table::{f2, fpct};
use crossbid_metrics::{percent_reduction, RunRecord, Table};
use crossbid_net::NoiseModel;
use crossbid_simcore::SimTime;
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

/// Parameters of the threaded crash sweep.
#[derive(Debug, Clone)]
pub struct CrashSweepExperiment {
    /// Root seed for workload generation and the runtime.
    pub seed: u64,
    /// Cluster size; must exceed the largest crash count so survivors
    /// can absorb the redistributed work.
    pub n_workers: usize,
    /// Jobs in the generated stream.
    pub n_jobs: usize,
    /// How many workers to crash, one row per entry (0 = the healthy
    /// reference row).
    pub crash_counts: Vec<usize>,
    /// Real seconds per virtual second.
    pub time_scale: f64,
    /// Bidding contest window (virtual seconds).
    pub window_secs: f64,
}

impl Default for CrashSweepExperiment {
    fn default() -> Self {
        CrashSweepExperiment {
            seed: 0xFA11,
            n_workers: 4,
            n_jobs: 40,
            crash_counts: vec![0, 1, 2],
            time_scale: 2e-4,
            window_secs: 1.0,
        }
    }
}

impl CrashSweepExperiment {
    /// A tiny configuration for tests.
    pub fn smoke() -> Self {
        CrashSweepExperiment {
            n_workers: 3,
            n_jobs: 12,
            crash_counts: vec![0, 1],
            time_scale: 5e-5,
            ..Default::default()
        }
    }
}

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct CrashCell {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Workers crashed in this run.
    pub crashes: usize,
    /// The run's record.
    pub record: RunRecord,
    /// The scheduler's healthy (0-crash) makespan, for the cost column.
    pub healthy_makespan_secs: f64,
}

impl CrashCell {
    /// Relative makespan cost of the crashes (positive = slower).
    pub fn makespan_cost_pct(&self) -> f64 {
        // `+ 0.0` keeps the healthy reference row at 0.0, not -0.0.
        -percent_reduction(self.healthy_makespan_secs, self.record.makespan_secs) + 0.0
    }
}

fn one_run(
    exp: &CrashSweepExperiment,
    scheduler: ThreadedScheduler,
    faults: FaultPlan,
) -> RunRecord {
    let cfg = ThreadedConfig {
        time_scale: exp.time_scale,
        noise: NoiseModel::None,
        speed_learning: true,
        scheduler,
        seed: exp.seed,
        faults,
        ..ThreadedConfig::default()
    };
    let specs = WorkerConfig::AllEqual.specs(exp.n_workers);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let stream = JobConfig::Pct80Large.generate(
        exp.seed,
        exp.n_jobs,
        task,
        &ArrivalProcess::evaluation_default(),
    );
    let meta = RunMeta {
        worker_config: "all-equal".into(),
        job_config: "80pct_large".into(),
        seed: exp.seed,
        ..RunMeta::default()
    };
    run_threaded_output(&specs, &cfg, &mut wf, stream.arrivals, &meta).record
}

/// Run the sweep for Bidding and Baseline. Crash times are anchored
/// to each scheduler's own healthy makespan (25 %), so every crashed
/// run dies mid-backlog regardless of how fast the scheduler is.
pub fn run(exp: &CrashSweepExperiment) -> Vec<CrashCell> {
    assert!(
        exp.crash_counts.iter().all(|k| *k < exp.n_workers),
        "at least one worker must survive every cell"
    );
    let schedulers = [
        (
            "bidding",
            ThreadedScheduler::Bidding {
                window_secs: exp.window_secs,
            },
        ),
        ("baseline", ThreadedScheduler::Baseline),
    ];
    let mut cells = Vec::new();
    for (name, sched) in schedulers {
        let healthy = one_run(exp, sched, FaultPlan::none());
        let crash_at = SimTime::from_secs_f64(healthy.makespan_secs * 0.25);
        let healthy_makespan = healthy.makespan_secs;
        for &k in &exp.crash_counts {
            let record = if k == 0 {
                healthy.clone()
            } else {
                let mut plan = FaultPlan::new();
                for w in 0..k as u32 {
                    plan = plan.crash_at(crash_at, WorkerId(w));
                }
                one_run(exp, sched, plan)
            };
            cells.push(CrashCell {
                scheduler: name,
                crashes: k,
                record,
                healthy_makespan_secs: healthy_makespan,
            });
        }
    }
    cells
}

/// Render the sweep as one table.
pub fn render(cells: &[CrashCell]) -> String {
    let mut t = Table::new(
        "Threaded crash sweep — workers crashed at 25% of healthy makespan (80pct_large, all-equal)",
        &[
            "scheduler",
            "crashed",
            "makespan (s)",
            "cost",
            "completed",
            "redistributed",
            "downtime (s)",
        ],
    );
    for c in cells {
        t.row([
            c.scheduler.to_string(),
            c.crashes.to_string(),
            f2(c.record.makespan_secs),
            fpct(c.makespan_cost_pct()),
            c.record.jobs_completed.to_string(),
            c.record.jobs_redistributed.to_string(),
            f2(c.record.recovery_secs),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_masks_crashes() {
        let exp = CrashSweepExperiment::smoke();
        let cells = run(&exp);
        assert_eq!(cells.len(), 4, "2 schedulers x 2 crash counts");
        for c in &cells {
            // Survivors always exist, so the crash must be fully
            // masked: no job lost in any cell.
            assert_eq!(
                c.record.jobs_completed as usize, exp.n_jobs,
                "{} with {} crashes lost jobs",
                c.scheduler, c.crashes
            );
            assert_eq!(c.record.worker_crashes as usize, c.crashes);
            if c.crashes == 0 {
                assert_eq!(c.record.jobs_redistributed, 0);
                assert_eq!(c.record.recovery_secs, 0.0);
            } else {
                assert!(
                    c.record.recovery_secs > 0.0,
                    "{}: downtime runs to end of run",
                    c.scheduler
                );
            }
        }
        let rendered = render(&cells);
        assert!(rendered.contains("bidding"));
        assert!(rendered.contains("baseline"));
        assert!(rendered.contains("redistributed"));
    }
}
