//! Grid execution: one cell = (worker config × job config ×
//! scheduler), run as a warm-cache multi-iteration session.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{Allocator, BaselineAllocator, RunSpec, Workflow};
use crossbid_metrics::{RunRecord, SchedulerKind};
use crossbid_simcore::SeedSequence;
use crossbid_workload::{JobConfig, WorkerConfig};

use crate::config::ExperimentConfig;

/// One point of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Cluster shape.
    pub worker_config: WorkerConfig,
    /// Job stream shape.
    pub job_config: JobConfig,
    /// Allocation algorithm.
    pub scheduler: SchedulerKind,
}

/// Build the allocator for a scheduler kind with evaluation defaults.
pub fn allocator_for(kind: SchedulerKind) -> Box<dyn Allocator> {
    match kind {
        SchedulerKind::Bidding => Box::new(BiddingAllocator::new()),
        SchedulerKind::Baseline => Box::new(BaselineAllocator),
        SchedulerKind::SparkStatic => {
            Box::new(crossbid_baselines::SparkStaticAllocator::with_stage_barrier())
        }
        SchedulerKind::SparkLocality => {
            Box::new(crossbid_baselines::SparkLocalityAllocator::default())
        }
        SchedulerKind::Matchmaking => Box::new(crossbid_baselines::MatchmakingAllocator::default()),
        SchedulerKind::Delay => Box::new(crossbid_baselines::DelayAllocator::default()),
        SchedulerKind::Bar => Box::new(crossbid_baselines::BarAllocator::default()),
        SchedulerKind::Random => Box::new(crossbid_baselines::RandomAllocator),
    }
}

/// Derive a stable per-cell seed so that *both* schedulers of a
/// comparison see the identical workload (catalog, sizes, arrival
/// times) — the scheduler is the only varying factor in a pair.
fn workload_seed(cfg: &ExperimentConfig, cell: &Cell) -> u64 {
    // Scheduler deliberately NOT mixed in.
    let wc = cell.worker_config as u64;
    let jc = cell.job_config as u64;
    SeedSequence::new(cfg.seed).seed_for(wc * 31 + jc)
}

/// Run one grid cell: a fresh cluster, `cfg.iterations` warm-cache
/// iterations of the same 120-job stream. Returns one record per
/// iteration.
pub fn run_cell(cfg: &ExperimentConfig, cell: Cell) -> Vec<RunRecord> {
    let specs = cell.worker_config.specs(cfg.n_workers);
    let wseed = workload_seed(cfg, &cell);
    let mut wf = Workflow::new();
    let task = wf.add_sink("repository-searcher");
    let stream = cell
        .job_config
        .generate(wseed, cfg.n_jobs, task, &cfg.arrivals);
    let allocator = allocator_for(cell.scheduler);
    let mut session = RunSpec::builder()
        .workers(specs)
        .engine(cfg.engine.clone())
        .names(cell.worker_config.name(), cell.job_config.name())
        .seed(wseed)
        .build()
        .sim();
    session.run_iterations(&mut wf, allocator.as_ref(), cfg.iterations, |_| {
        stream.arrivals.clone()
    })
}

/// Run many cells in parallel (one OS thread per cell, bounded by the
/// scheduler of the OS — cells are short). Results keep `cells`'
/// order.
pub fn run_grid(cfg: &ExperimentConfig, cells: &[Cell]) -> Vec<Vec<RunRecord>> {
    let mut results: Vec<Option<Vec<RunRecord>>> = (0..cells.len()).map(|_| None).collect();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = cells.len().div_ceil(parallelism).max(1);
    std::thread::scope(|s| {
        for (cells_chunk, out_chunk) in cells.chunks(chunk).zip(results.chunks_mut(chunk)) {
            s.spawn(move || {
                for (cell, slot) in cells_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(run_cell(cfg, *cell));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every cell filled"))
        .collect()
}

/// The full Bidding-vs-Baseline grid of §6.3 (4 worker configs × 5
/// job configs × 2 schedulers = 40 cells).
pub fn full_grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for wc in WorkerConfig::ALL {
        for jc in JobConfig::ALL {
            for sched in [SchedulerKind::Bidding, SchedulerKind::Baseline] {
                cells.push(Cell {
                    worker_config: wc,
                    job_config: jc,
                    scheduler: sched,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheduler_kind_has_an_allocator() {
        for kind in SchedulerKind::ALL {
            let alloc = allocator_for(kind);
            assert_eq!(alloc.kind(), kind, "allocator kind mismatch for {kind}");
        }
    }

    #[test]
    fn full_grid_has_40_cells() {
        let g = full_grid();
        assert_eq!(g.len(), 40);
        // Every pair appears with both schedulers.
        let bidding = g
            .iter()
            .filter(|c| c.scheduler == SchedulerKind::Bidding)
            .count();
        assert_eq!(bidding, 20);
    }

    #[test]
    fn workload_seed_ignores_scheduler() {
        let cfg = ExperimentConfig::default();
        let a = workload_seed(
            &cfg,
            &Cell {
                worker_config: WorkerConfig::AllEqual,
                job_config: JobConfig::Pct80Large,
                scheduler: SchedulerKind::Bidding,
            },
        );
        let b = workload_seed(
            &cfg,
            &Cell {
                worker_config: WorkerConfig::AllEqual,
                job_config: JobConfig::Pct80Large,
                scheduler: SchedulerKind::Baseline,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn run_cell_produces_one_record_per_iteration() {
        let cfg = ExperimentConfig {
            n_jobs: 10,
            iterations: 2,
            ..ExperimentConfig::default()
        };
        let records = run_cell(
            &cfg,
            Cell {
                worker_config: WorkerConfig::AllEqual,
                job_config: JobConfig::AllDiffSmall,
                scheduler: SchedulerKind::Bidding,
            },
        );
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].jobs_completed, 10);
        assert_eq!(records[0].iteration, 0);
        assert_eq!(records[1].iteration, 1);
        // Warm cache: second iteration strictly fewer misses.
        assert!(records[1].cache_misses <= records[0].cache_misses);
    }

    #[test]
    fn grid_runner_matches_sequential() {
        let cfg = ExperimentConfig {
            n_jobs: 8,
            iterations: 1,
            ..ExperimentConfig::default()
        };
        let cells = vec![
            Cell {
                worker_config: WorkerConfig::AllEqual,
                job_config: JobConfig::AllDiffSmall,
                scheduler: SchedulerKind::Bidding,
            },
            Cell {
                worker_config: WorkerConfig::OneSlow,
                job_config: JobConfig::Pct80Small,
                scheduler: SchedulerKind::Baseline,
            },
        ];
        let par = run_grid(&cfg, &cells);
        let seq: Vec<Vec<RunRecord>> = cells.iter().map(|c| run_cell(&cfg, *c)).collect();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.len(), s.len());
            for (a, b) in p.iter().zip(s) {
                assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
                assert_eq!(a.cache_misses, b.cache_misses);
            }
        }
    }
}
