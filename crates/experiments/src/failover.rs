//! The `repro failover` artifact: master-crash sweeps over every
//! built-in checker scenario, on both runtimes.
//!
//! The simulation engine section is fully deterministic: each
//! iteration derives a crash index from the seed (bounded by a
//! fault-free reference run's log length so the leader dies
//! mid-protocol), kills the master at that append, and requires the
//! elected standby to finish every job exactly once with zero oracle
//! violations. The threaded section runs the explorer's
//! [`ExploreConfig::failover`] axis — seeded crash indices crossed
//! with lossy links and chaos-perturbed delivery — and additionally
//! requires that at least one failover actually fired per scenario
//! (a sweep whose crashes all landed past the end of the run proves
//! nothing).

use crossbid_checker::{check_log, explore_builtins, ExploreConfig, Scenario};
use crossbid_crossflow::{MasterFaultPlan, NetFaultPlan};
use crossbid_simcore::SeedSequence;

/// Parameters for `repro failover`.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Crash indices swept per scenario (per runtime).
    pub iters: u32,
    /// Root seed; per-iteration crash indices derive from it.
    pub seed: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            iters: 8,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of a full failover sweep.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Rendered report (one section per runtime).
    pub body: String,
    /// `true` iff every run completed all jobs exactly once, with zero
    /// violations and at least one master crash per scenario.
    pub ok: bool,
}

/// Sweep seeded master-crash indices over the built-in scenario set on
/// both runtimes.
pub fn run(cfg: &FailoverConfig) -> FailoverReport {
    let mut body = format!(
        "# Master failover check (iters={}, seed={})\n\n",
        cfg.iters, cfg.seed
    );
    let mut ok = true;

    body.push_str("## Simulation engine — seeded crash indices, deterministic replay\n\n");
    for sc in Scenario::builtins() {
        // A fault-free reference run bounds the crash indices: an
        // index drawn from the first half of its log reliably lands
        // mid-protocol even though the crashed run re-offers (and so
        // appends) more.
        let reference = sc.run_sim(cfg.seed);
        let bound = (reference.sched_log.len() as u64 / 2).max(2);
        let seeds = SeedSequence::new(cfg.seed);
        let mut failovers = 0u64;
        let mut scenario_ok = true;
        for i in 0..cfg.iters {
            let crash_index = 1 + seeds.seed_for(0xFA11_0000 + i as u64) % bound;
            let out = sc.run_sim_faulted(
                cfg.seed,
                NetFaultPlan::none(),
                MasterFaultPlan::new().crash_at(crash_index),
            );
            let violations = check_log(&out.sched_log, sc.oracle_options(false));
            let fired = out.sched_log.failovers() as u64;
            failovers += fired;
            if out.record.jobs_completed != sc.jobs.len() as u64
                || !violations.is_empty()
                || fired == 0
            {
                scenario_ok = false;
                ok = false;
                body.push_str(&format!(
                    "{} [{}]: FAIL at crash index {crash_index} ({}/{} completed, {} violation(s), {} failover(s))\n",
                    sc.name,
                    sc.protocol.name(),
                    out.record.jobs_completed,
                    sc.jobs.len(),
                    violations.len(),
                    fired,
                ));
                for v in &violations {
                    body.push_str(&format!("  {v}\n"));
                }
            }
        }
        if scenario_ok {
            body.push_str(&format!(
                "{} [{}]: ok ({} run(s), {} failover(s) survived)\n",
                sc.name,
                sc.protocol.name(),
                cfg.iters,
                failovers
            ));
        }
    }

    body.push_str("\n## Threaded runtime — crash indices × lossy links × chaos\n\n");
    let ecfg = ExploreConfig::failover(cfg.iters, cfg.seed);
    for report in explore_builtins(&ecfg) {
        let crashed = report.failovers_observed > 0;
        ok &= report.passed() && crashed;
        body.push_str(&report.render());
        if report.passed() && !crashed {
            body.push_str("  FAIL: no master crash fired across the sweep\n");
        }
    }

    body.push_str(&format!("\nresult: {}\n", if ok { "PASS" } else { "FAIL" }));
    FailoverReport { body, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_failover_passes() {
        let report = run(&FailoverConfig {
            iters: 1,
            seed: 0xC0FFEE,
        });
        assert!(report.ok, "{}", report.body);
        assert!(report.body.contains("result: PASS"));
    }
}
