//! The `repro federate` artifact: the sharded multi-master federation
//! under one roof.
//!
//! Three sections, every run checked by the federated oracle (merged
//! union log) *and* the per-shard oracle (each master's augmented
//! log):
//!
//! 1. The checker's federation axis on the simulation engine — shard
//!    count × spill threshold × membership churn, one deterministic
//!    `(run, chaos, net, membership)` seed tuple per iteration. Spill
//!    scenarios must actually spill and churn scenarios must actually
//!    churn, or the sweep proves nothing; the `nospill` baseline must
//!    conversely never spill.
//! 2. The same axis on the threaded runtime with aggressive intake
//!    chaos armed.
//! 3. The headline acceptance scenario: 1000 workers under four
//!    masters with elastic churn on every shard (a deferred join, a
//!    drain, an administrative removal), a CPU burst aimed entirely at
//!    shard 0, run on both runtimes — and the same overload replayed
//!    with spilling disabled (`spill_threshold_secs = ∞`), which must
//!    be measurably slower than the federated run.

use crossbid_checker::{
    check_log, explore_federation_builtins, FedExploreConfig, FedSeeds, OracleOptions,
};
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::prelude::*;
use crossbid_simcore::{SeedSequence, SimTime};

/// Parameters for `repro federate`.
#[derive(Debug, Clone)]
pub struct FederateConfig {
    /// Seed tuples swept per scenario (per runtime).
    pub iters: u32,
    /// Root seed; tuples and the headline seeds derive from it.
    pub seed: u64,
    /// Shape of the headline scenario.
    pub headline: HeadlineShape,
}

impl Default for FederateConfig {
    fn default() -> Self {
        FederateConfig {
            iters: 4,
            seed: 0xC0FFEE,
            headline: HeadlineShape::full(),
        }
    }
}

impl FederateConfig {
    /// The reduced sweep CI runs (`repro federate --smoke`).
    pub fn smoke() -> Self {
        FederateConfig {
            iters: 1,
            headline: HeadlineShape::smoke(),
            ..Self::default()
        }
    }
}

/// Shape of the headline multi-master scenario: `shards` masters, each
/// over `workers_per_shard` listed workers (the last one is a deferred
/// join), and a shard-0 burst of `jobs` CPU jobs.
#[derive(Debug, Clone)]
pub struct HeadlineShape {
    pub shards: usize,
    pub workers_per_shard: usize,
    pub jobs: usize,
    /// CPU seconds per burst job.
    pub cpu_secs: f64,
    /// Burst inter-arrival gap in virtual seconds.
    pub arrival_gap_secs: f64,
    /// Spill threshold of the federated run (the solo run uses ∞).
    pub spill_threshold_secs: f64,
    /// Churn instants `(join, drain, remove)`, applied on every shard.
    pub churn_at: (f64, f64, f64),
}

impl HeadlineShape {
    /// The acceptance-bar shape: 4 masters × 250 workers = 1000
    /// workers, overloaded roughly 2.4× past shard 0's capacity.
    pub fn full() -> Self {
        HeadlineShape {
            shards: 4,
            workers_per_shard: 250,
            jobs: 400,
            cpu_secs: 300.0,
            arrival_gap_secs: 0.5,
            spill_threshold_secs: 2.0,
            churn_at: (5.0, 60.0, 120.0),
        }
    }

    /// A scaled-down copy of the same overload for CI smoke.
    pub fn smoke() -> Self {
        HeadlineShape {
            shards: 4,
            workers_per_shard: 10,
            jobs: 60,
            cpu_secs: 30.0,
            arrival_gap_secs: 0.5,
            spill_threshold_secs: 4.0,
            churn_at: (5.0, 20.0, 40.0),
        }
    }

    fn total_workers(&self) -> usize {
        self.shards * self.workers_per_shard
    }

    /// Each shard's churn: the spare (last listed) worker joins, then
    /// worker 0 drains, then worker 1 is removed.
    fn membership_plan(&self) -> MembershipPlan {
        let (join, drain, remove) = self.churn_at;
        MembershipPlan::new()
            .join_at(
                SimTime::from_secs_f64(join),
                WorkerId((self.workers_per_shard - 1) as u32),
            )
            .drain_at(SimTime::from_secs_f64(drain), WorkerId(0))
            .remove_at(SimTime::from_secs_f64(remove), WorkerId(1))
    }

    /// The federation spec for one runtime; `spill` off replays the
    /// identical overload as one saturated master that never forwards.
    fn spec(&self, runtime: FedRuntimeKind, spill: bool, seeds: FedSeeds) -> FederationSpec {
        let shards = (0..self.shards)
            .map(|s| {
                ShardSpec::new(
                    (0..self.workers_per_shard)
                        .map(|i| WorkerSpec::builder(format!("s{s}w{i}")).build())
                        .collect(),
                )
                .faults(Faults::new().membership(self.membership_plan()))
            })
            .collect();
        let mut spec = FederationSpec::new(shards);
        spec.spill_threshold_secs = if spill {
            self.spill_threshold_secs
        } else {
            f64::INFINITY
        };
        spec.gossip_period_secs = 2.0;
        spec.spill_latency_secs = 0.5;
        spec.seed = seeds.run;
        spec.net_seed = seeds.net;
        spec.runtime = runtime;
        spec.chaos = seeds.chaos.map(ChaosConfig::aggressive);
        let mut engine = EngineConfig::ideal();
        engine.max_events =
            (self.jobs as u64) * (self.workers_per_shard as u64 * 8 + 64) + 1_000_000;
        spec.engine = engine;
        spec
    }

    /// The shard-0 CPU burst.
    fn arrivals(&self) -> Vec<FedArrival> {
        (0..self.jobs)
            .map(|i| FedArrival {
                at: SimTime::from_secs_f64(i as f64 * self.arrival_gap_secs),
                home: ShardId(0),
                spec: JobSpec::compute(TaskId(0), self.cpu_secs, Payload::Index(i as u64)),
            })
            .collect()
    }

    fn run(&self, runtime: FedRuntimeKind, spill: bool, seeds: FedSeeds) -> FederationOutput {
        run_federation(
            &self.spec(runtime, spill, seeds),
            self.arrivals(),
            &BiddingAllocator::new(),
            |_| {
                let mut wf = Workflow::new();
                wf.add_sink("burst");
                wf
            },
        )
    }
}

/// Outcome of a full federation sweep.
#[derive(Debug, Clone)]
pub struct FederateReport {
    /// Rendered report (explorer axes + headline scenario).
    pub body: String,
    /// `true` iff every run passed both oracles with the demanded
    /// spill/churn activity and the federated headline beat the
    /// single-master overload.
    pub ok: bool,
}

/// Built-in scenarios whose sweep must observe at least one spill.
const MUST_SPILL: &[&str] = &["fed_2shard_spill", "fed_4shard_spill", "fed_4shard_churn"];
/// Built-in scenarios whose sweep must observe membership churn.
const MUST_CHURN: &[&str] = &["fed_4shard_churn", "fed_2shard_lossy_gossip_churn"];
/// Built-in scenarios that must never spill (the ∞-threshold control).
const MUST_NOT_SPILL: &[&str] = &["fed_2shard_nospill"];

/// Check one explorer sweep against the activity demands above.
fn explorer_section(body: &mut String, cfg: &FedExploreConfig) -> bool {
    let mut ok = true;
    for report in explore_federation_builtins(cfg) {
        let name = report.scenario.as_str();
        let mut demands = Vec::new();
        if MUST_SPILL.contains(&name) && report.spills_observed == 0 {
            demands.push("no spill fired across the sweep");
        }
        if MUST_CHURN.contains(&name) && report.churn_observed == 0 {
            demands.push("no churn event fired across the sweep");
        }
        if MUST_NOT_SPILL.contains(&name) && report.spills_observed > 0 {
            demands.push("the ∞-threshold baseline spilled");
        }
        ok &= report.passed() && demands.is_empty();
        body.push_str(&report.render());
        for d in demands {
            body.push_str(&format!("  FAIL: {d}\n"));
        }
    }
    ok
}

/// Check one headline run: full conservation, both oracles clean, and
/// (federated runs) real spill + churn activity.
fn headline_check(
    body: &mut String,
    label: &str,
    shape: &HeadlineShape,
    out: &FederationOutput,
    spill: bool,
) -> bool {
    let merged_violations = check_log(
        &out.merged,
        OracleOptions {
            expect_all_complete: true,
            strict_reoffer: false,
            workers: None,
            federated: true,
        },
    );
    let shard_violations: usize = out
        .shards
        .iter()
        .map(|o| {
            check_log(
                &o.sched_log,
                OracleOptions {
                    expect_all_complete: true,
                    strict_reoffer: false,
                    workers: Some(shape.workers_per_shard as u32),
                    federated: false,
                },
            )
            .len()
        })
        .sum();
    let churn =
        out.merged.worker_joins() + out.merged.worker_drains() + out.merged.worker_removals();
    let conserved = out.jobs_completed == shape.jobs as u64;
    let active = !spill || (!out.spills.is_empty() && churn > 0);
    let ok = merged_violations.is_empty() && shard_violations == 0 && conserved && active;
    body.push_str(&format!(
        "{label}: {} — {}/{} jobs completed, {} spill(s), {} churn event(s), {} merged + {} shard violation(s), makespan {:.1}s\n",
        if ok { "ok" } else { "FAIL" },
        out.jobs_completed,
        shape.jobs,
        out.spills.len(),
        churn,
        merged_violations.len(),
        shard_violations,
        out.makespan_secs,
    ));
    for v in &merged_violations {
        body.push_str(&format!("  merged: {v}\n"));
    }
    ok
}

/// Sweep the federation axis on both runtimes, then run the headline
/// 1000-worker multi-master scenario and its single-master control.
pub fn run(cfg: &FederateConfig) -> FederateReport {
    let mut body = format!(
        "# Federation sweep (iters={}, seed={})\n\n",
        cfg.iters, cfg.seed
    );
    let mut ok = true;

    body.push_str("## Simulation engine — shard count × spill threshold × churn\n\n");
    ok &= explorer_section(&mut body, &FedExploreConfig::quick(cfg.iters, cfg.seed));

    body.push_str("\n## Threaded runtime — the same axis under intake chaos\n\n");
    let threaded_iters = cfg.iters.clamp(1, 2);
    ok &= explorer_section(
        &mut body,
        &FedExploreConfig::threaded(threaded_iters, cfg.seed),
    );

    let shape = &cfg.headline;
    body.push_str(&format!(
        "\n## Headline — {} workers, {} masters, elastic churn on every shard\n\n",
        shape.total_workers(),
        shape.shards,
    ));
    let roots = SeedSequence::new(cfg.seed);
    let sim_seeds = FedSeeds {
        run: roots.seed_for(0xFED0),
        chaos: None,
        net: roots.seed_for(0xFED1),
        membership: roots.seed_for(0xFED2),
    };
    let fed = shape.run(FedRuntimeKind::Sim, true, sim_seeds);
    ok &= headline_check(&mut body, "sim, federated", shape, &fed, true);

    let threaded_seeds = FedSeeds {
        chaos: Some(roots.seed_for(0xFED3)),
        ..sim_seeds
    };
    let threaded = shape.run(FedRuntimeKind::Threaded, true, threaded_seeds);
    ok &= headline_check(
        &mut body,
        "threaded, federated + chaos",
        shape,
        &threaded,
        true,
    );

    let solo = shape.run(FedRuntimeKind::Sim, false, sim_seeds);
    ok &= headline_check(&mut body, "sim, spilling disabled", shape, &solo, false);

    let beat = fed.makespan_secs < solo.makespan_secs;
    ok &= beat;
    body.push_str(&format!(
        "\nspillover vs saturated single master: {:.1}s vs {:.1}s ({:.2}x) — {}\n",
        fed.makespan_secs,
        solo.makespan_secs,
        solo.makespan_secs / fed.makespan_secs.max(f64::MIN_POSITIVE),
        if beat {
            "cross-shard spillover wins"
        } else {
            "FAIL: spilling did not beat the overloaded master"
        },
    ));

    body.push_str(&format!("\nresult: {}\n", if ok { "PASS" } else { "FAIL" }));
    FederateReport { body, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_federate_passes() {
        let report = run(&FederateConfig::smoke());
        assert!(report.ok, "{}", report.body);
        assert!(report.body.contains("result: PASS"));
        assert!(report.body.contains("spillover wins"));
    }

    #[test]
    fn a_rigged_headline_control_cannot_spill() {
        // The ∞-threshold control of the smoke shape: everything stays
        // on shard 0 and still completes (exactly-once without ever
        // handing off).
        let shape = HeadlineShape::smoke();
        let out = shape.run(FedRuntimeKind::Sim, false, FedSeeds::plain(9));
        assert!(out.spills.is_empty());
        assert_eq!(out.jobs_completed, shape.jobs as u64);
    }
}
