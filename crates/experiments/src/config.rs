//! Shared experiment configuration.

use crossbid_crossflow::EngineConfig;
use crossbid_workload::ArrivalProcess;

/// Parameters shared by the whole evaluation (§6.2/§6.3.1 defaults).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Root seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Jobs per configuration (the paper's 120).
    pub n_jobs: usize,
    /// Workers per cluster (the paper's 5).
    pub n_workers: usize,
    /// Warm-cache iterations per cell (the paper's 3).
    pub iterations: u32,
    /// Arrival process for the job stream.
    pub arrivals: ArrivalProcess,
    /// Engine parameters (latency, noise, bid window environment).
    pub engine: EngineConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 0xC0FFEE,
            n_jobs: 120,
            n_workers: 5,
            iterations: 3,
            arrivals: ArrivalProcess::evaluation_default(),
            engine: EngineConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// A scaled-down configuration for fast tests and smoke benches:
    /// 30 jobs, 2 iterations, otherwise the paper's setup.
    pub fn smoke() -> Self {
        ExperimentConfig {
            n_jobs: 30,
            iterations: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.n_jobs, 120);
        assert_eq!(c.n_workers, 5);
        assert_eq!(c.iterations, 3);
    }

    #[test]
    fn smoke_is_smaller() {
        let c = ExperimentConfig::smoke();
        assert!(c.n_jobs < 120);
        assert!(c.iterations < 3);
    }
}
