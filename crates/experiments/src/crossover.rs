//! The crossover sweep — §6.3.2 conclusion 3 as a curve:
//!
//! "The Bidding Scheduler exhibits an overhead that makes it more
//! effective for large resources and long-running workflows. However,
//! for small resources or short workflows, competing for jobs
//! unnecessarily prolongs the execution, making it less advantageous
//! compared to the Baseline."
//!
//! We sweep the repository size from a few megabytes to nearly a
//! gigabyte under the paper's fixed arrival process and record the
//! baseline/bidding speedup at each point. At small sizes both
//! schedulers are arrival-bound — jobs are trivial next to the
//! stream's gaps, so contesting them buys nothing and the ratio sits
//! at ~1.0 ("performs comparably"). As the resource size grows the
//! cluster saturates and placement quality takes over the makespan,
//! so the ratio climbs.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{Allocator, BaselineAllocator, RunSpec, Workflow};
use crossbid_metrics::table::f2;
use crossbid_metrics::{speedup, RunRecord, Table};
use crossbid_workload::{JobMix, MixComponent, Repetition, SizeClass, WorkerConfig};

use crate::config::ExperimentConfig;

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct CrossoverPoint {
    /// Nominal repository size in MB for this point.
    pub repo_mb: u64,
    /// Warm-iteration records: (bidding, baseline).
    pub bidding: RunRecord,
    /// Baseline record.
    pub baseline: RunRecord,
}

impl CrossoverPoint {
    /// Baseline time / bidding time (> 1 = bidding faster).
    pub fn bidding_speedup(&self) -> f64 {
        speedup(self.baseline.makespan_secs, self.bidding.makespan_secs)
    }
}

/// The swept sizes in MB (log-spaced across the paper's 1 MB–1 GB
/// range).
pub const SWEEP_MB: [u64; 7] = [5, 15, 45, 120, 300, 600, 900];

fn run_point(cfg: &ExperimentConfig, repo_mb: u64, alloc: &dyn Allocator) -> RunRecord {
    // 60% of jobs draw from a hot pool of 8 repositories (locality
    // matters), 40% are fresh (transfers persist even with warm
    // caches). Arrival rate scales with job size so the cluster sits
    // at the same ~1.2x utilization at every point — the paper's
    // regime, where allocation quality decides the makespan.
    let class = SizeClass::of(repo_mb * 1_000_000);
    let mix = JobMix::new()
        .with(MixComponent::data(0.6, class, Repetition::Pool { n: 8 }))
        .with(MixComponent::data(0.4, class, Repetition::AllDifferent));
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    // The paper's arrival process is the same for every workload; the
    // resource size alone decides whether the cluster is idle-bound
    // (small repos: both schedulers just keep up, contest overhead
    // buys nothing) or allocation-bound (large repos: placement
    // quality decides the makespan).
    let arrivals = cfg.arrivals.clone();
    // Exact sizes: rebuild arrivals with the requested size (the class
    // sampler varies sizes; pin them for a clean sweep).
    let mut stream = mix.generate(cfg.seed, cfg.n_jobs, task, &arrivals);
    for a in &mut stream.arrivals {
        if let Some(r) = &mut a.spec.resource {
            r.bytes = repo_mb * 1_000_000;
            a.spec.work_bytes = r.bytes;
        }
    }
    let mut session = RunSpec::builder()
        .workers(WorkerConfig::AllEqual.specs(cfg.n_workers))
        .engine(cfg.engine.clone())
        .names(WorkerConfig::AllEqual.name(), format!("pool8_{repo_mb}mb"))
        .seed(cfg.seed)
        .build()
        .sim();
    // Two iterations; report the warm one (locality in effect).
    let records = session.run_iterations(&mut wf, alloc, 2, |_| stream.arrivals.clone());
    records.into_iter().last().expect("two iterations")
}

/// Run the sweep.
pub fn run(cfg: &ExperimentConfig) -> Vec<CrossoverPoint> {
    SWEEP_MB
        .iter()
        .map(|&mb| CrossoverPoint {
            repo_mb: mb,
            bidding: run_point(cfg, mb, &BiddingAllocator::new()),
            baseline: run_point(cfg, mb, &BaselineAllocator),
        })
        .collect()
}

/// Render the sweep table.
pub fn render(points: &[CrossoverPoint]) -> String {
    let mut t = Table::new(
        "Crossover sweep — baseline/bidding speedup vs repository size (warm iteration)",
        &[
            "repo (MB)",
            "bidding (s)",
            "baseline (s)",
            "speedup",
            "bid misses",
            "base misses",
        ],
    );
    for p in points {
        t.row([
            p.repo_mb.to_string(),
            f2(p.bidding.makespan_secs),
            f2(p.baseline.makespan_secs),
            format!("{:.2}x", p.bidding_speedup()),
            p.bidding.cache_misses.to_string(),
            p.baseline.cache_misses.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_size_dependence() {
        let cfg = ExperimentConfig {
            n_jobs: 40,
            ..ExperimentConfig::default()
        };
        let points = run(&cfg);
        assert_eq!(points.len(), SWEEP_MB.len());
        // §6.3.2 conclusion 3's shape: the advantage at the largest
        // size exceeds the advantage at the smallest.
        let small = points.first().expect("non-empty").bidding_speedup();
        let large = points.last().expect("non-empty").bidding_speedup();
        assert!(
            large > small,
            "advantage should grow with size: {small:.2}x at {} MB vs {large:.2}x at {} MB",
            SWEEP_MB[0],
            SWEEP_MB[SWEEP_MB.len() - 1]
        );
        let rendered = render(&points);
        assert!(rendered.contains("Crossover"));
    }
}
