//! The `repro replicate` artifact: the self-healing replicated data
//! plane under one roof.
//!
//! Three sections, every run checked by the protocol oracle (the
//! replication invariants — no fetch from a non-replica, eviction
//! never destroys a last copy, every committed repair completes, no
//! double repair — arm themselves on the first replica event):
//!
//! 1. The checker's replication axis on the simulation engine — the
//!    crash scenario must actually repair and the lossy scenario must
//!    actually retry, or the sweep proves nothing.
//! 2. The same axis under lossy links (drop/duplicate/delay plus a
//!    timed partition window composed with the scenarios' own seeded
//!    peer-transfer loss).
//! 3. The same axis on the threaded runtime.
//! 4. The headline product: replication factor {1, 2, 3} × a holder
//!    crash × peer loss, run on **both** runtimes. Every cell must
//!    complete every job exactly once with zero violations; the
//!    factor ≥ 2 cells must commit and complete at least one
//!    re-replication, and each runtime must observe at least one peer
//!    fetch retry across its headline row.

use crossbid_checker::{
    check_log, explore_replication_builtins, FaultDef, JobDef, Protocol, ReplExploreConfig,
    ReplScenario,
};
use crossbid_crossflow::{NetFaultPlan, ProtocolMutation};

/// Parameters for `repro replicate`.
#[derive(Debug, Clone)]
pub struct ReplicateConfig {
    /// Seed tuples swept per scenario (per runtime).
    pub iters: u32,
    /// Root seed; sweep and headline seeds derive from it.
    pub seed: u64,
}

impl Default for ReplicateConfig {
    fn default() -> Self {
        ReplicateConfig {
            iters: 4,
            seed: 0x9E11,
        }
    }
}

impl ReplicateConfig {
    /// The reduced sweep CI runs (`repro replicate --smoke`).
    pub fn smoke() -> Self {
        ReplicateConfig {
            iters: 2,
            ..Self::default()
        }
    }
}

/// Outcome of a full replication sweep.
#[derive(Debug, Clone)]
pub struct ReplicateReport {
    /// Rendered report (explorer axes + headline product).
    pub body: String,
    /// `true` iff every run passed the oracle with the demanded
    /// repair/retry activity.
    pub ok: bool,
}

/// Built-in scenarios whose sweep must complete a re-replication.
const MUST_REPAIR: &[&str] = &["repl_f2_crash"];
/// Built-in scenarios whose sweep must retry a lost peer transfer.
const MUST_RETRY: &[&str] = &["repl_f3_lossy"];

/// Check one explorer sweep against the activity demands above. The
/// demands apply only to the clean sweeps (`demand_activity`): under
/// the lossy-link plan the partition windows legitimately suppress
/// peer traffic, and that sweep's job is survival, not activity.
fn explorer_section(body: &mut String, cfg: &ReplExploreConfig, demand_activity: bool) -> bool {
    let mut ok = true;
    for report in explore_replication_builtins(cfg) {
        let name = report.scenario.as_str();
        let mut demands = Vec::new();
        if demand_activity && MUST_REPAIR.contains(&name) && report.repairs_observed == 0 {
            demands.push("no committed re-replication completed across the sweep");
        }
        if demand_activity && MUST_RETRY.contains(&name) && report.fetch_retries_observed == 0 {
            demands.push("no lost peer transfer was retried across the sweep");
        }
        ok &= report.passed() && demands.is_empty();
        body.push_str(&report.render());
        for d in demands {
            body.push_str(&format!("  FAIL: {d}\n"));
        }
    }
    ok
}

/// One headline cell: factor `f` with a holder crash and seeded peer
/// loss, on four workers over two hot artifacts.
fn headline_scenario(factor: u32) -> ReplScenario {
    ReplScenario {
        name: match factor {
            1 => "repl_headline_f1",
            2 => "repl_headline_f2",
            _ => "repl_headline_f3",
        },
        protocol: Protocol::Bidding,
        workers: 4,
        factor,
        jobs: (0..12)
            .map(|i| JobDef {
                at_secs: i as f64 * 2.0,
                object: 1 + (i % 2) as u64,
                bytes: 100_000_000,
            })
            .collect(),
        faults: vec![
            FaultDef {
                at_secs: 21.0,
                worker: 0,
                recovers: false,
            },
            FaultDef {
                at_secs: 40.0,
                worker: 0,
                recovers: true,
            },
        ],
        peer_drop_prob: 0.5,
        storage_gb: 10.0,
    }
}

/// Run the factor × crash × loss product on one runtime. Returns
/// `false` on any violation, lost/duplicated job, missing repair
/// (factor ≥ 2), or if the whole row saw no peer fetch retry.
fn headline_section(body: &mut String, runtime: &str, seed: u64) -> bool {
    let mut ok = true;
    let mut retries = 0u64;
    for factor in [1u32, 2, 3] {
        let sc = headline_scenario(factor);
        let out = match runtime {
            "sim" => sc.run_sim(seed, ProtocolMutation::None, NetFaultPlan::none()),
            _ => sc.run_threaded(seed, ProtocolMutation::None, NetFaultPlan::none()),
        };
        let violations = check_log(&out.sched_log, sc.oracle_options());
        let done = out.record.jobs_completed;
        let repairs = out.sched_log.repair_dones() as u64;
        let fetches = out.sched_log.fetch_oks() as u64;
        let fails = out.sched_log.fetch_fails() as u64;
        retries += fails;
        let conserved = done == sc.jobs.len() as u64;
        let repaired = factor < 2 || repairs >= 1;
        let cell_ok = violations.is_empty() && conserved && repaired;
        ok &= cell_ok;
        body.push_str(&format!(
            "factor {factor} × crash × loss on {runtime}: {} — {}/{} jobs, {} peer fetch(es), {} retry(ies), {} repair(s), {} violation(s), makespan {:.1}s\n",
            if cell_ok { "ok" } else { "FAIL" },
            done,
            sc.jobs.len(),
            fetches,
            fails,
            repairs,
            violations.len(),
            out.record.makespan_secs,
        ));
        for v in &violations {
            body.push_str(&format!("  oracle: {v}\n"));
        }
        if !repaired {
            body.push_str("  FAIL: no committed re-replication completed\n");
        }
    }
    if retries == 0 {
        body.push_str(&format!(
            "  FAIL: no peer fetch retry observed across the {runtime} headline\n"
        ));
        ok = false;
    }
    ok
}

/// Sweep the replication axis on both runtimes, then run the factor ×
/// crash × loss headline product.
pub fn run(cfg: &ReplicateConfig) -> ReplicateReport {
    let mut body = format!(
        "# Replication sweep (iters={}, seed={})\n\n",
        cfg.iters, cfg.seed
    );
    let mut ok = true;

    body.push_str("## Simulation engine — factor × crash × peer loss × eviction pressure\n\n");
    ok &= explorer_section(
        &mut body,
        &ReplExploreConfig::quick(cfg.iters, cfg.seed),
        true,
    );

    body.push_str("\n## Simulation engine — the same axis under lossy links\n\n");
    ok &= explorer_section(
        &mut body,
        &ReplExploreConfig::lossy(cfg.iters, cfg.seed),
        false,
    );

    body.push_str("\n## Threaded runtime — the same axis\n\n");
    let threaded_iters = cfg.iters.clamp(1, 2);
    ok &= explorer_section(
        &mut body,
        &ReplExploreConfig::threaded(threaded_iters, cfg.seed),
        true,
    );

    body.push_str("\n## Headline — replication factor {1,2,3} × holder crash × peer loss\n\n");
    ok &= headline_section(&mut body, "sim", cfg.seed ^ 0x9E1);
    ok &= headline_section(&mut body, "threaded", cfg.seed ^ 0x9E1);

    body.push_str(&format!("\nresult: {}\n", if ok { "PASS" } else { "FAIL" }));
    ReplicateReport { body, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_replicate_passes() {
        let report = run(&ReplicateConfig::smoke());
        assert!(report.ok, "{}", report.body);
        assert!(report.body.contains("result: PASS"));
        assert!(report.body.contains("repair(s)"));
    }
}
