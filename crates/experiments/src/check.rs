//! The `repro check` artifact: every built-in checker scenario, on
//! both runtimes, through the protocol invariant oracle.
//!
//! The simulation engine runs each scenario once (it is
//! deterministic); the threaded runtime is swept across `--iters`
//! chaos-perturbed interleavings per scenario, each checked against
//! the oracle and cross-checked for conservation parity against the
//! simulation run. Any violation fails the check, and the report
//! carries the full repro recipe — run seed, minimal job subset and
//! the recorded delivery schedule — so the failure can be replayed
//! (see CONTRIBUTING.md).

use crossbid_checker::{check_log, explore_builtins, ExploreConfig, Scenario};

/// Parameters for `repro check`.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Threaded interleavings per scenario.
    pub iters: u32,
    /// Root seed; per-iteration run and chaos seeds derive from it.
    pub seed: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            iters: 8,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of a full check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Rendered report (one section per runtime).
    pub body: String,
    /// `true` iff no scenario produced a violation or parity mismatch.
    pub ok: bool,
}

/// Run the whole built-in scenario set through the oracle on both
/// runtimes.
pub fn run(cfg: &CheckConfig) -> CheckReport {
    let mut body = format!(
        "# Protocol invariant check (iters={}, seed={})\n\n",
        cfg.iters, cfg.seed
    );
    let mut ok = true;

    body.push_str("## Simulation engine — one deterministic run per scenario\n\n");
    for sc in Scenario::builtins() {
        let out = sc.run_sim(cfg.seed);
        let violations = check_log(&out.sched_log, sc.oracle_options(false));
        if violations.is_empty() {
            body.push_str(&format!(
                "{} [{}]: ok ({} job(s) completed)\n",
                sc.name,
                sc.protocol.name(),
                out.record.jobs_completed
            ));
        } else {
            ok = false;
            body.push_str(&format!(
                "{} [{}]: {} violation(s)\n",
                sc.name,
                sc.protocol.name(),
                violations.len()
            ));
            for v in &violations {
                body.push_str(&format!("  {v}\n"));
            }
        }
    }

    body.push_str("\n## Threaded runtime — chaos-perturbed interleavings + sim parity\n\n");
    let ecfg = ExploreConfig::quick(cfg.iters, cfg.seed);
    for report in explore_builtins(&ecfg) {
        ok &= report.passed();
        body.push_str(&report.render());
    }

    body.push_str(&format!("\nresult: {}\n", if ok { "PASS" } else { "FAIL" }));
    CheckReport { body, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_check_passes() {
        let report = run(&CheckConfig {
            iters: 1,
            seed: 0xC0FFEE,
        });
        assert!(report.ok, "{}", report.body);
        assert!(report.body.contains("result: PASS"));
    }
}
