//! The headline aggregates of §6.3.2:
//!
//! 1. "Bidding Scheduler achieves a speedup of approximately 24.5%
//!    compared to the Baseline" — mean per-cell speedup;
//! 2. "approximately 49% fewer cache misses and approximately 45.3%
//!    reduction in data load per workflow run";
//! 3. the abstract's "up to 3.57x faster execution times".

use crossbid_metrics::table::{fpct, fx};
use crossbid_metrics::{percent_reduction, speedup, RunRecord, SchedulerKind, Table};

use crate::fig4::rows_from_records as fig4_rows;

/// Headline aggregates over a full grid of records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean percentage speedup of Bidding over Baseline across grid
    /// cells.
    pub mean_speedup_pct: f64,
    /// Mean percentage reduction in cache misses.
    pub miss_reduction_pct: f64,
    /// Mean percentage reduction in data load.
    pub data_reduction_pct: f64,
    /// Largest per-cell speedup factor (the "up to Nx" number).
    pub max_speedup: f64,
    /// Number of (worker cfg × job cfg) cells compared.
    pub cells: usize,
}

/// Compute the summary from grid records (both schedulers present).
pub fn compute(records: &[RunRecord]) -> Summary {
    let rows = fig4_rows(records);
    let mut speedups = Vec::new();
    for r in &rows {
        speedups.push(speedup(r.time_secs.1, r.time_secs.0));
    }
    let mean_speedup_pct = if rows.is_empty() {
        0.0
    } else {
        rows.iter()
            .map(|r| percent_reduction(r.time_secs.1, r.time_secs.0))
            .sum::<f64>()
            / rows.len() as f64
    };
    // Misses/data: totals per scheduler across the grid, as the paper
    // aggregates "per workflow run".
    let total = |kind: SchedulerKind, f: fn(&RunRecord) -> f64| -> f64 {
        let rs: Vec<&RunRecord> = records.iter().filter(|r| r.scheduler == kind).collect();
        if rs.is_empty() {
            0.0
        } else {
            rs.iter().map(|r| f(r)).sum::<f64>() / rs.len() as f64
        }
    };
    let miss_reduction_pct = percent_reduction(
        total(SchedulerKind::Baseline, |r| r.cache_misses as f64),
        total(SchedulerKind::Bidding, |r| r.cache_misses as f64),
    );
    let data_reduction_pct = percent_reduction(
        total(SchedulerKind::Baseline, |r| r.data_load_mb),
        total(SchedulerKind::Bidding, |r| r.data_load_mb),
    );
    Summary {
        mean_speedup_pct,
        miss_reduction_pct,
        data_reduction_pct,
        max_speedup: speedups.iter().copied().fold(f64::NAN, f64::max),
        cells: rows.len(),
    }
}

/// Render the summary table.
pub fn render(s: &Summary) -> String {
    let mut t = Table::new(
        "Headline summary — Bidding vs Baseline over the full grid",
        &["metric", "value", "paper"],
    );
    t.row([
        "mean speedup".into(),
        fpct(s.mean_speedup_pct),
        "~24.5%".into(),
    ]);
    t.row([
        "cache-miss reduction".into(),
        fpct(s.miss_reduction_pct),
        "~49%".into(),
    ]);
    t.row([
        "data-load reduction".into(),
        fpct(s.data_reduction_pct),
        "~45.3%".into(),
    ]);
    t.row([
        "max speedup".into(),
        fx(s.max_speedup),
        "up to 3.57x".into(),
    ]);
    t.row(["cells compared".into(), s.cells.to_string(), "20".into()]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: SchedulerKind, wc: &str, jc: &str, t: f64, m: u64, d: f64) -> RunRecord {
        RunRecord {
            scheduler: s,
            worker_config: wc.into(),
            job_config: jc.into(),
            iteration: 0,
            seed: 0,
            makespan_secs: t,
            data_load_mb: d,
            cache_misses: m,
            cache_hits: 0,
            evictions: 0,
            jobs_completed: 1,
            control_messages: 0,
            contests_timed_out: 0,
            contests_fallback: 0,
            mean_queue_wait_secs: 0.0,
            worker_busy_frac: vec![],
            jobs_redistributed: 0,
            worker_crashes: 0,
            recovery_secs: 0.0,
        }
    }

    #[test]
    fn computes_reductions_and_max() {
        let records = vec![
            rec(SchedulerKind::Bidding, "a", "x", 100.0, 10, 1000.0),
            rec(SchedulerKind::Baseline, "a", "x", 200.0, 20, 2000.0),
            rec(SchedulerKind::Bidding, "b", "y", 100.0, 30, 3000.0),
            rec(SchedulerKind::Baseline, "b", "y", 120.0, 40, 3000.0),
        ];
        let s = compute(&records);
        assert_eq!(s.cells, 2);
        // Cell speedups: 50% and ~16.7% → mean ≈ 33.3%.
        assert!((s.mean_speedup_pct - (50.0 + 100.0 / 6.0) / 2.0).abs() < 1e-9);
        assert!((s.max_speedup - 2.0).abs() < 1e-12);
        // Misses: baseline mean 30 vs bidding mean 20 → 33.3%.
        assert!((s.miss_reduction_pct - 100.0 / 3.0).abs() < 1e-9);
        let rendered = render(&s);
        assert!(rendered.contains("mean speedup"));
        assert!(rendered.contains("2.00x"));
    }

    #[test]
    fn empty_records_are_safe() {
        let s = compute(&[]);
        assert_eq!(s.cells, 0);
        assert_eq!(s.mean_speedup_pct, 0.0);
    }
}
