//! Experiments for the extensions this reproduction adds beyond the
//! paper's evaluated configuration — both taken from the paper's own
//! future-work list (§5 caveats, §7):
//!
//! * **fault tolerance** — "a worker dying after winning a bid" and
//!   "redistributing the remaining jobs if a worker becomes
//!   unavailable";
//! * **bid learning** — workers "keep the historic data of their bids
//!   and completed work and use this data to learn from it and adjust
//!   their future bids".

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, Allocator, BaselineAllocator, Cluster, EngineConfig, FaultPlan, RunMeta,
    WorkerId, Workflow,
};
use crossbid_metrics::table::{f2, fpct};
use crossbid_metrics::{percent_reduction, RunRecord, Table};
use crossbid_simcore::SimTime;
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

use crate::config::ExperimentConfig;

/// One fault-tolerance row: a scheduler's run with and without a
/// mid-run crash of one worker.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// The undisturbed run.
    pub healthy: RunRecord,
    /// The run where worker 0 crashes at 25% of the healthy makespan
    /// and recovers at 60%.
    pub crashed: RunRecord,
}

impl FaultRow {
    /// Relative makespan cost of the crash (positive = slower).
    pub fn makespan_cost_pct(&self) -> f64 {
        -percent_reduction(self.healthy.makespan_secs, self.crashed.makespan_secs)
    }
}

fn one_run(cfg: &ExperimentConfig, alloc: &dyn Allocator, faults: FaultPlan) -> RunRecord {
    let engine = EngineConfig {
        faults,
        ..cfg.engine.clone()
    };
    let specs = WorkerConfig::AllEqual.specs(cfg.n_workers);
    let mut cluster = Cluster::new(&specs, &engine);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let stream = JobConfig::Pct80Large.generate(
        cfg.seed,
        cfg.n_jobs,
        task,
        &ArrivalProcess::evaluation_default(),
    );
    let meta = RunMeta {
        worker_config: "all-equal".into(),
        job_config: "80pct_large".into(),
        seed: cfg.seed,
        ..RunMeta::default()
    };
    run_workflow(
        &mut cluster,
        &mut wf,
        alloc,
        stream.arrivals,
        &engine,
        &meta,
    )
    .record
}

/// Run the fault-tolerance experiment for Bidding and Baseline.
pub fn run_faults(cfg: &ExperimentConfig) -> Vec<FaultRow> {
    let schedulers: Vec<(&'static str, Box<dyn Allocator>)> = vec![
        ("bidding", Box::new(BiddingAllocator::new())),
        ("baseline", Box::new(BaselineAllocator)),
    ];
    schedulers
        .into_iter()
        .map(|(name, alloc)| {
            let healthy = one_run(cfg, alloc.as_ref(), FaultPlan::none());
            let crash_at = SimTime::from_secs_f64(healthy.makespan_secs * 0.25);
            let recover_at = SimTime::from_secs_f64(healthy.makespan_secs * 0.60);
            let plan = FaultPlan::new()
                .crash_at(crash_at, WorkerId(0))
                .recover_at(recover_at, WorkerId(0));
            let crashed = one_run(cfg, alloc.as_ref(), plan);
            FaultRow {
                scheduler: name,
                healthy,
                crashed,
            }
        })
        .collect()
}

/// Render the fault-tolerance table.
pub fn render_faults(rows: &[FaultRow]) -> String {
    let mut t = Table::new(
        "Extension — crash + recovery of one worker mid-run (80pct_large, all-equal)",
        &[
            "scheduler",
            "healthy (s)",
            "crashed (s)",
            "cost",
            "jobs lost",
            "extra data (MB)",
        ],
    );
    for r in rows {
        t.row([
            r.scheduler.to_string(),
            f2(r.healthy.makespan_secs),
            f2(r.crashed.makespan_secs),
            fpct(r.makespan_cost_pct()),
            (r.healthy.jobs_completed as i64 - r.crashed.jobs_completed as i64).to_string(),
            f2(r.crashed.data_load_mb - r.healthy.data_load_mb),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_costs_time_but_never_jobs() {
        let cfg = ExperimentConfig {
            n_jobs: 30,
            iterations: 1,
            ..ExperimentConfig::default()
        };
        let rows = run_faults(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(
                r.healthy.jobs_completed, r.crashed.jobs_completed,
                "{}: jobs lost to the crash",
                r.scheduler
            );
            assert!(
                r.crashed.makespan_secs >= r.healthy.makespan_secs * 0.95,
                "{}: crash made the run much faster?",
                r.scheduler
            );
        }
        let rendered = render_faults(&rows);
        assert!(rendered.contains("bidding"));
        assert!(rendered.contains("baseline"));
    }
}
