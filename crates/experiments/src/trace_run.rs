//! `repro trace` — run one scenario on either runtime with full
//! observability: per-job lifecycle trace, scheduler event log, and
//! the typed metrics registry, streamed as JSONL
//! (see [`crossbid_crossflow::export`]) plus a phase-breakdown table
//! (queue wait / transfer / processing — the decomposition the
//! paper's §6.3.2 discussion reasons about).

use std::io::{self, Write};

use crossbid_crossflow::{write_run_stream, RunOutput, RunSpec, RunStreamMeta, Runtime};
use crossbid_metrics::table::f2;
use crossbid_metrics::{HistogramSnapshot, SchedulerKind, Table};
use crossbid_simcore::SeedSequence;
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

use crate::runner::allocator_for;

/// Which executor `repro trace` drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeChoice {
    /// The deterministic discrete-event engine.
    Sim,
    /// The real-threaded runtime.
    Threaded,
}

impl RuntimeChoice {
    /// Parse a `--runtime` value.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(RuntimeChoice::Sim),
            "threaded" => Some(RuntimeChoice::Threaded),
            _ => None,
        }
    }
}

/// One traced scenario.
#[derive(Debug, Clone)]
pub struct TraceRunConfig {
    /// Executor.
    pub runtime: RuntimeChoice,
    /// Allocation algorithm.
    pub scheduler: SchedulerKind,
    /// Cluster shape.
    pub worker_config: WorkerConfig,
    /// Job stream shape.
    pub job_config: JobConfig,
    /// Jobs in the stream.
    pub n_jobs: usize,
    /// Warm-cache iterations.
    pub iterations: u32,
    /// Root seed.
    pub seed: u64,
}

impl Default for TraceRunConfig {
    fn default() -> Self {
        TraceRunConfig {
            runtime: RuntimeChoice::Sim,
            scheduler: SchedulerKind::Bidding,
            worker_config: WorkerConfig::AllEqual,
            job_config: JobConfig::Pct80Large,
            n_jobs: 60,
            iterations: 2,
            seed: 0xC0FFEE,
        }
    }
}

/// Run the scenario: one warm-cache session, traces and metrics on.
/// Returns `(stream header, run output)` per iteration.
///
/// # Errors
/// The threaded runtime implements only the bidding and Baseline
/// protocols; other scheduler kinds are rejected.
pub fn run(cfg: &TraceRunConfig) -> Result<Vec<(RunStreamMeta, RunOutput)>, String> {
    if cfg.runtime == RuntimeChoice::Threaded
        && !matches!(
            cfg.scheduler,
            SchedulerKind::Bidding | SchedulerKind::Baseline
        )
    {
        return Err(format!(
            "the threaded runtime implements bidding and baseline, not {}",
            cfg.scheduler.name()
        ));
    }
    // No shared metrics sink: each iteration snapshots its own
    // private registry, so the phase table is per-iteration rather
    // than cumulative.
    let spec = RunSpec::builder()
        .workers(cfg.worker_config.paper_specs())
        .names(cfg.worker_config.name(), cfg.job_config.name())
        .seed(cfg.seed)
        .trace(true)
        .time_scale(2e-4)
        .build();
    let mut rt: Box<dyn Runtime> = match cfg.runtime {
        RuntimeChoice::Sim => Box::new(spec.sim()),
        RuntimeChoice::Threaded => Box::new(spec.threaded()),
    };
    let allocator = allocator_for(cfg.scheduler);
    let mut wf = crossbid_crossflow::Workflow::new();
    let task = wf.add_sink("scan");
    let stream = cfg.job_config.generate(
        cfg.seed,
        cfg.n_jobs,
        task,
        &ArrivalProcess::evaluation_default(),
    );
    let mut runs = Vec::new();
    for i in 0..cfg.iterations {
        let out = rt.run_iteration(&mut wf, allocator.as_ref(), stream.arrivals.clone());
        let meta = RunStreamMeta {
            runtime: rt.name().to_string(),
            scheduler: cfg.scheduler.name().to_string(),
            worker_config: cfg.worker_config.name().to_string(),
            job_config: cfg.job_config.name().to_string(),
            iteration: i,
            seed: SeedSequence::new(cfg.seed).seed_for(1000 + i as u64),
        };
        runs.push((meta, out));
    }
    Ok(runs)
}

/// Render the per-iteration phase breakdown from the metrics
/// registry: how each job's latency splits into queue wait, resource
/// transfer, and processing.
pub fn render_phase_table(runs: &[(RunStreamMeta, RunOutput)]) -> String {
    let title = match runs.first() {
        Some((m, _)) => format!(
            "Phase breakdown — {} on {} ({} × {})",
            m.scheduler, m.runtime, m.worker_config, m.job_config
        ),
        None => "Phase breakdown".to_string(),
    };
    let mut t = Table::new(
        title,
        &[
            "iter",
            "jobs",
            "makespan (s)",
            "wait mean (s)",
            "wait p95 (s)",
            "fetch mean (s)",
            "fetches",
            "proc mean (s)",
            "timeouts",
            "fallbacks",
        ],
    );
    for (meta, out) in runs {
        let snap = &out.metrics;
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            buckets: Vec::new(),
        };
        let wait = snap.histogram("job/queue_wait_secs").unwrap_or(&empty);
        let fetch = snap.histogram("job/fetch_secs").unwrap_or(&empty);
        let proc = snap.histogram("job/proc_secs").unwrap_or(&empty);
        t.row([
            meta.iteration.to_string(),
            out.record.jobs_completed.to_string(),
            f2(out.record.makespan_secs),
            f2(wait.mean()),
            f2(wait.quantile(0.95)),
            f2(fetch.mean()),
            fetch.count.to_string(),
            f2(proc.mean()),
            out.record.contests_timed_out.to_string(),
            out.record.contests_fallback.to_string(),
        ]);
    }
    t.render()
}

/// Write every iteration's full run stream (header, trace events,
/// scheduler events, record, metrics snapshot), concatenated, to
/// `out`. Returns total lines.
pub fn write_streams<W: Write>(mut out: W, runs: &[(RunStreamMeta, RunOutput)]) -> io::Result<u64> {
    let mut total = 0;
    for (meta, run) in runs {
        total += write_run_stream(&mut out, meta, run)?;
    }
    Ok(total)
}

/// Write bare records (no per-job events) as a parseable run stream —
/// what `repro <artifact> --trace FILE` emits for grid artifacts,
/// whose cells run without tracing. Returns lines written.
pub fn write_records_jsonl<W: Write>(
    out: W,
    records: &[crossbid_metrics::RunRecord],
) -> io::Result<u64> {
    let mut w = crossbid_metrics::JsonlWriter::new(out);
    for r in records {
        w.write(&crossbid_crossflow::RunStreamLine::Record(r.clone()).to_json())?;
    }
    let lines = w.lines();
    w.finish()?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::{parse_run_stream, RunStreamLine};

    fn smoke_cfg(runtime: RuntimeChoice) -> TraceRunConfig {
        TraceRunConfig {
            runtime,
            n_jobs: 12,
            iterations: 2,
            ..TraceRunConfig::default()
        }
    }

    #[test]
    fn sim_trace_run_streams_and_parses() {
        let runs = run(&smoke_cfg(RuntimeChoice::Sim)).unwrap();
        assert_eq!(runs.len(), 2);
        let mut buf = Vec::new();
        let lines = write_streams(&mut buf, &runs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_run_stream(&text).unwrap();
        assert_eq!(parsed.len() as u64, lines);
        let metas = parsed
            .iter()
            .filter(|l| matches!(l, RunStreamLine::Meta(_)))
            .count();
        assert_eq!(metas, 2, "one header per iteration");
        let traces = parsed
            .iter()
            .filter(|l| matches!(l, RunStreamLine::Trace(_)))
            .count();
        assert!(traces >= 12 * 3 * 2, "every job queues, starts, finishes");
        let table = render_phase_table(&runs);
        assert!(table.contains("Phase breakdown"), "{table}");
        assert!(table.contains("bidding"), "{table}");
    }

    #[test]
    fn threaded_trace_run_streams_and_parses() {
        let runs = run(&smoke_cfg(RuntimeChoice::Threaded)).unwrap();
        let mut buf = Vec::new();
        write_streams(&mut buf, &runs).unwrap();
        let parsed = parse_run_stream(&String::from_utf8(buf).unwrap()).unwrap();
        let records = parsed
            .iter()
            .filter_map(|l| match l {
                RunStreamLine::Record(r) => Some(r),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].jobs_completed, 12);
    }

    #[test]
    fn threaded_rejects_unsupported_schedulers() {
        let cfg = TraceRunConfig {
            runtime: RuntimeChoice::Threaded,
            scheduler: SchedulerKind::Random,
            ..TraceRunConfig::default()
        };
        assert!(run(&cfg).is_err());
    }
}
