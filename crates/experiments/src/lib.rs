//! # crossbid-experiments
//!
//! The evaluation harness. One module per paper artifact:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Figure 2 — MSR times: Spark vs Crossflow Baseline, four column groups |
//! | [`fig3`] | Figure 3a/b/c — avg execution time / cache misses / data load per workload, Bidding vs Baseline |
//! | [`fig4`] | Figure 4 — avg execution time per workload per worker configuration |
//! | [`tables`] | Tables 1–3 — three "non-simulated" MSR runs on the threaded runtime |
//! | [`summary`] | The headline aggregates (≈24.5 % speedup, ≈49 % fewer misses, ≈45.3 % less data, up to 3.57×) |
//! | [`crash_sweep`] | Extension — threaded-runtime crash sweep: masked failures under 0/1/2 dead workers |
//!
//! [`runner`] executes the (worker cfg × job cfg × scheduler) grid —
//! every cell is an independent 3-iteration warm-cache session —
//! in parallel across OS threads; everything is seeded and the
//! simulated cells are bit-reproducible.

#[cfg(feature = "bench-alloc")]
pub mod allocmeter;
pub mod atomize;
pub mod bench;
pub mod check;
pub mod config;
pub mod crash_sweep;
pub mod crossover;
pub mod extensions;
pub mod failover;
pub mod federate;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod netfault;
pub mod replicate;
pub mod replication;
pub mod runner;
pub mod summary;
pub mod tables;
pub mod trace_run;

pub use config::ExperimentConfig;
pub use runner::{run_cell, run_grid, Cell};
