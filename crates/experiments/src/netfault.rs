//! The `repro netfault` artifact: the lossy-network survival sweep.
//!
//! The paper assumes reliable transport between the master and its
//! workers; this sweep drops the assumption and measures whether the
//! at-least-once reliability layer (sequence-numbered envelopes, acked
//! placements with seeded-backoff retries, placement leases, dedup at
//! both ends) really delivers exactly-once *effects*. The grid is
//! loss rate × partition length; every cell runs each built-in checker
//! scenario on **both** runtimes, feeds the control-plane log to the
//! protocol invariant oracle, and requires every job to complete with
//! zero violations. The per-cell counter totals (drops, duplicates,
//! retries, dedup hits, acks, lease bounces) show the layer actually
//! worked for a living, and any failure line carries the full
//! `(run seed, net seed)` replay pair.

use crossbid_checker::{check_log, Scenario, ThreadedRun};
use crossbid_crossflow::{NetFaultPlan, RunOutput};
use crossbid_simcore::{SeedSequence, SimTime};

/// Parameters for `repro netfault`.
#[derive(Debug, Clone)]
pub struct NetFaultConfig {
    /// Threaded runs per (cell, scenario); the sim runs once per pair
    /// (it is deterministic).
    pub iters: u32,
    /// Root seed; per-run and per-link seeds derive from it.
    pub seed: u64,
}

impl Default for NetFaultConfig {
    fn default() -> Self {
        NetFaultConfig {
            iters: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of the sweep.
#[derive(Debug, Clone)]
pub struct NetFaultReport {
    /// Rendered report (one section per grid cell).
    pub body: String,
    /// `true` iff every run completed every job with zero violations.
    pub ok: bool,
}

/// The sweep axes: message loss rate (duplication rides along at half
/// the loss rate) × full-partition window. Both windows are shorter
/// than the lease + retry horizon, so survival is the requirement,
/// not a lucky draw.
const LOSS_RATES: [f64; 2] = [0.1, 0.3];
const PARTITIONS: [(&str, Option<(f64, f64)>); 2] = [("none", None), ("2s", Some((2.0, 4.0)))];

fn cell_plan(net_seed: u64, loss: f64, window: Option<(f64, f64)>) -> NetFaultPlan {
    let plan = NetFaultPlan::lossy(net_seed, loss, loss / 2.0);
    match window {
        Some((from, until)) => plan.with_partition(
            None,
            SimTime::from_secs_f64(from),
            SimTime::from_secs_f64(until),
        ),
        None => plan,
    }
}

/// The reliability counters worth showing per cell, in render order.
const COUNTERS: [&str; 6] = [
    "net/dropped",
    "net/duplicated",
    "net/retries",
    "net/dedup_hits",
    "acks/received",
    "lease/expired",
];

#[derive(Default)]
struct CellTally {
    counters: [u64; COUNTERS.len()],
    failures: Vec<String>,
}

impl CellTally {
    /// Check one run's log and fold its counters in. `where_` names
    /// the runtime and seeds so a failure line is a replay recipe.
    fn absorb(&mut self, sc: &Scenario, out: &RunOutput, where_: &str) {
        for (name, v) in &out.metrics.counters {
            if let Some(i) = COUNTERS.iter().position(|c| c == name) {
                self.counters[i] += v;
            }
        }
        if out.record.jobs_completed != sc.jobs.len() as u64 {
            self.failures.push(format!(
                "{}: {} completed {}/{} jobs",
                where_,
                sc.name,
                out.record.jobs_completed,
                sc.jobs.len()
            ));
        }
        for v in check_log(&out.sched_log, sc.oracle_options(false)) {
            self.failures
                .push(format!("{}: {}: {}", where_, sc.name, v));
        }
    }
}

/// Run the loss × partition grid over every built-in scenario on both
/// runtimes.
pub fn run(cfg: &NetFaultConfig) -> NetFaultReport {
    let mut body = format!(
        "# Lossy-network survival sweep (iters={}, seed={})\n\n\
         Every cell must complete all jobs with exactly-once effects\n\
         and zero oracle violations on both runtimes.\n",
        cfg.iters, cfg.seed
    );
    let seeds = SeedSequence::new(cfg.seed);
    let scenarios = Scenario::builtins();
    let mut ok = true;
    let mut cell_idx = 0u64;
    for loss in LOSS_RATES {
        for (pname, window) in PARTITIONS {
            body.push_str(&format!(
                "\n## loss={loss:.0}% dup={dup:.0}% partition={pname}\n\n",
                loss = loss * 100.0,
                dup = loss * 50.0,
            ));
            let mut tally = CellTally::default();
            let mut runs = 0u64;
            for (si, sc) in scenarios.iter().enumerate() {
                let sim_net = seeds.seed_for(cell_idx * 1000 + si as u64);
                let out = sc.run_sim_with_net(cfg.seed, cell_plan(sim_net, loss, window));
                tally.absorb(
                    sc,
                    &out,
                    &format!("sim (run seed {}, net seed {sim_net})", cfg.seed),
                );
                runs += 1;
                for i in 0..cfg.iters {
                    let run_seed =
                        seeds.seed_for(cell_idx * 1000 + si as u64 * 10 + i as u64 + 100);
                    let net_seed = run_seed ^ 0x4E37;
                    let out = sc.run_threaded(&ThreadedRun {
                        netfault: Some(cell_plan(net_seed, loss, window)),
                        ..ThreadedRun::plain(run_seed)
                    });
                    tally.absorb(
                        sc,
                        &out,
                        &format!("threaded (run seed {run_seed}, net seed {net_seed})"),
                    );
                    runs += 1;
                }
            }
            body.push_str(&format!("runs: {runs}\n"));
            for (name, v) in COUNTERS.iter().zip(tally.counters) {
                body.push_str(&format!("{name}: {v}\n"));
            }
            if tally.failures.is_empty() {
                body.push_str("cell: ok\n");
            } else {
                ok = false;
                for f in &tally.failures {
                    body.push_str(&format!("FAIL {f}\n"));
                }
            }
            cell_idx += 1;
        }
    }
    body.push_str(&format!("\nresult: {}\n", if ok { "PASS" } else { "FAIL" }));
    NetFaultReport { body, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_netfault_sweep_passes() {
        let report = run(&NetFaultConfig {
            iters: 1,
            seed: 0xC0FFEE,
        });
        assert!(report.ok, "{}", report.body);
        assert!(report.body.contains("result: PASS"));
        // The sweep is only evidence if the faults actually fired.
        assert!(
            !report.body.contains("net/dropped: 0\n"),
            "no messages were ever dropped:\n{}",
            report.body
        );
    }
}
