//! Tables 1–3 — the "non-simulated" MSR experiments (§6.4): three
//! runs of the full MSR pipeline per scheduler on the **real-threaded
//! runtime**, cold caches, workers learning their speeds from observed
//! transfers. Reported per run: end-to-end time (Table 1), data load
//! in MB (Table 2), cache-miss count (Table 3).

use std::sync::Arc;

use crossbid_crossflow::{
    run_threaded_output, RunMeta, ThreadedConfig, ThreadedScheduler, Workflow,
};
use crossbid_metrics::table::f2;
use crossbid_metrics::{RunRecord, SchedulerKind, Table};
use crossbid_msr::github::GitHubParams;
use crossbid_msr::{build_pipeline, library_arrivals, SyntheticGitHub};
use crossbid_simcore::SeedSequence;
use crossbid_workload::WorkerConfig;

/// Parameters of the §6.4 experiment.
#[derive(Debug, Clone)]
pub struct MsrExperiment {
    /// Root seed.
    pub seed: u64,
    /// Runs per scheduler (the paper's 3).
    pub runs: u32,
    /// GitHub universe shape.
    pub github: GitHubParams,
    /// Fraction of search hits that are false positives (cloned then
    /// discarded by the scan), modelling recall-oriented search.
    pub false_positive_rate: f64,
    /// Seconds between library arrivals.
    pub library_interval_secs: f64,
    /// Real seconds per virtual second.
    pub time_scale: f64,
    /// Per-worker store capacity in GB. t3.micro-class instances ship
    /// with small EBS volumes (8 GB default), far below the repository
    /// catalog — the §6.4 data-load numbers imply exactly this kind of
    /// eviction churn.
    pub storage_gb: f64,
}

impl Default for MsrExperiment {
    fn default() -> Self {
        MsrExperiment {
            seed: 0xD00D,
            runs: 3,
            github: GitHubParams {
                n_repos: 40,
                n_libraries: 80,
                mean_deps: 10.0,
                popularity_skew: 0.9,
            },
            false_positive_rate: 0.1,
            library_interval_secs: 15.0,
            time_scale: 2e-5,
            storage_gb: 8.0,
        }
    }
}

impl MsrExperiment {
    /// A tiny configuration for tests.
    pub fn smoke() -> Self {
        MsrExperiment {
            runs: 1,
            github: GitHubParams {
                n_repos: 6,
                n_libraries: 12,
                mean_deps: 4.0,
                popularity_skew: 0.9,
            },
            library_interval_secs: 1.0,
            ..Default::default()
        }
    }
}

/// Results of the three tables, one record per (scheduler, run).
#[derive(Debug, Clone)]
pub struct MsrResults {
    /// Per-run records for the Bidding Scheduler.
    pub bidding: Vec<RunRecord>,
    /// Per-run records for the Baseline.
    pub baseline: Vec<RunRecord>,
}

/// Execute the §6.4 experiment on the threaded runtime. Every run
/// starts with cold caches ("none of the workers have any locally
/// downloaded repositories") and §6.4 speed learning enabled.
pub fn run(exp: &MsrExperiment) -> MsrResults {
    let seq = SeedSequence::new(exp.seed);
    let do_runs = |scheduler: ThreadedScheduler, kind: SchedulerKind| -> Vec<RunRecord> {
        (0..exp.runs)
            .map(|i| {
                let run_seed = seq.seed_for(500 + i as u64);
                // Same universe across runs and schedulers: only the
                // allocation differs.
                let gh = Arc::new(SyntheticGitHub::generate(exp.seed, &exp.github));
                let mut wf = Workflow::new();
                let pipe = build_pipeline(&mut wf, gh, exp.seed, exp.false_positive_rate);
                let arrivals =
                    library_arrivals(&pipe, exp.github.n_libraries, exp.library_interval_secs);
                let cfg = ThreadedConfig {
                    time_scale: exp.time_scale,
                    speed_learning: true,
                    scheduler,
                    seed: run_seed,
                    ..ThreadedConfig::default()
                };
                let mut specs = WorkerConfig::AllEqual.paper_specs();
                for s in &mut specs {
                    s.storage_bytes = (exp.storage_gb * 1e9) as u64;
                }
                let meta = RunMeta {
                    worker_config: "aws-t3-like".into(),
                    job_config: "msr".into(),
                    iteration: i,
                    seed: run_seed,
                };
                let mut r = run_threaded_output(&specs, &cfg, &mut wf, arrivals, &meta).record;
                r.scheduler = kind;
                r
            })
            .collect()
    };
    MsrResults {
        bidding: do_runs(
            ThreadedScheduler::Bidding { window_secs: 1.0 },
            SchedulerKind::Bidding,
        ),
        baseline: do_runs(ThreadedScheduler::Baseline, SchedulerKind::Baseline),
    }
}

/// Render Tables 1–3 in the paper's layout.
pub fn render(res: &MsrResults) -> String {
    let mut t1 = Table::new(
        "Table 1 — MSR execution times (s)",
        &["MSR", "Bidding", "Baseline"],
    );
    let mut t2 = Table::new("Table 2 — Data load (MB)", &["MSR", "Bidding", "Baseline"]);
    let mut t3 = Table::new(
        "Table 3 — Cache miss count",
        &["MSR", "Bidding", "Baseline"],
    );
    for (i, (b, base)) in res.bidding.iter().zip(&res.baseline).enumerate() {
        let run = format!("run {}", i + 1);
        t1.row([run.clone(), f2(b.makespan_secs), f2(base.makespan_secs)]);
        t2.row([run.clone(), f2(b.data_load_mb), f2(base.data_load_mb)]);
        t3.row([
            run,
            b.cache_misses.to_string(),
            base.cache_misses.to_string(),
        ]);
    }
    format!("{}\n{}\n{}", t1.render(), t2.render(), t3.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_paired_records() {
        let res = run(&MsrExperiment::smoke());
        assert_eq!(res.bidding.len(), 1);
        assert_eq!(res.baseline.len(), 1);
        let b = &res.bidding[0];
        let base = &res.baseline[0];
        assert!(b.jobs_completed > 0);
        assert_eq!(
            b.jobs_completed, base.jobs_completed,
            "same universe, same pipeline, same job count"
        );
        assert!(b.cache_misses > 0, "cold caches must fetch");
        let s = render(&res);
        assert!(s.contains("Table 1"));
        assert!(s.contains("Table 3"));
        assert!(s.contains("run 1"));
    }
}
