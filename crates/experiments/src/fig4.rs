//! Figure 4 — "Average execution times per workload per algorithm",
//! broken down by worker configuration. This is the chart that shows
//! *where* bidding pays off: it loses (or ties) when a fast worker
//! plus small resources make contest overhead dominate, and wins on
//! slow/heterogeneous clusters with large resources.

use crossbid_metrics::table::f2;
use crossbid_metrics::{speedup, Aggregator, RunRecord, SchedulerKind, Table};

use crate::config::ExperimentConfig;
use crate::runner::{full_grid, run_grid};

/// One (worker config, job config) cell with both schedulers' average
/// times.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Worker configuration name.
    pub worker_config: String,
    /// Job configuration name.
    pub job_config: String,
    /// Average seconds: (bidding, baseline).
    pub time_secs: (f64, f64),
}

impl Fig4Row {
    /// Baseline time / bidding time; > 1 means bidding is faster.
    pub fn bidding_speedup(&self) -> f64 {
        speedup(self.time_secs.1, self.time_secs.0)
    }
}

/// Compute the Figure 4 rows from grid records.
pub fn rows_from_records(records: &[RunRecord]) -> Vec<Fig4Row> {
    let mut agg = Aggregator::new();
    agg.push_all_by_both(records.iter());
    agg.keys()
        .into_iter()
        .filter_map(|key| {
            let bid = agg.get(SchedulerKind::Bidding, &key)?;
            let base = agg.get(SchedulerKind::Baseline, &key)?;
            let (wc, jc) = key.split_once('/')?;
            Some(Fig4Row {
                worker_config: wc.to_string(),
                job_config: jc.to_string(),
                time_secs: (bid.makespan.mean(), base.makespan.mean()),
            })
        })
        .collect()
}

/// Run the grid and compute the rows.
pub fn run(cfg: &ExperimentConfig) -> (Vec<Fig4Row>, Vec<RunRecord>) {
    let cells = full_grid();
    let records: Vec<RunRecord> = run_grid(cfg, &cells).into_iter().flatten().collect();
    (rows_from_records(&records), records)
}

/// Render the breakdown table.
pub fn render(rows: &[Fig4Row]) -> String {
    let mut t = Table::new(
        "Figure 4 — average execution time per workload per worker configuration (s)",
        &[
            "workers",
            "workload",
            "bidding",
            "baseline",
            "baseline/bidding",
        ],
    );
    for r in rows {
        t.row([
            r.worker_config.clone(),
            r.job_config.clone(),
            f2(r.time_secs.0),
            f2(r.time_secs.1),
            format!("{:.2}x", r.bidding_speedup()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: SchedulerKind, wc: &str, jc: &str, t: f64) -> RunRecord {
        RunRecord {
            scheduler: s,
            worker_config: wc.into(),
            job_config: jc.into(),
            iteration: 0,
            seed: 0,
            makespan_secs: t,
            data_load_mb: 0.0,
            cache_misses: 0,
            cache_hits: 0,
            evictions: 0,
            jobs_completed: 1,
            control_messages: 0,
            contests_timed_out: 0,
            contests_fallback: 0,
            mean_queue_wait_secs: 0.0,
            worker_busy_frac: vec![],
            jobs_redistributed: 0,
            worker_crashes: 0,
            recovery_secs: 0.0,
        }
    }

    #[test]
    fn rows_split_worker_and_job_config() {
        let rows = rows_from_records(&[
            rec(SchedulerKind::Bidding, "one-slow", "80pct_large", 100.0),
            rec(SchedulerKind::Baseline, "one-slow", "80pct_large", 150.0),
        ]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].worker_config, "one-slow");
        assert_eq!(rows[0].job_config, "80pct_large");
        assert!((rows[0].bidding_speedup() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_cell() {
        let s = render(&rows_from_records(&[
            rec(SchedulerKind::Bidding, "a", "x", 1.0),
            rec(SchedulerKind::Baseline, "a", "x", 2.0),
            rec(SchedulerKind::Bidding, "b", "y", 3.0),
            rec(SchedulerKind::Baseline, "b", "y", 3.0),
        ]));
        assert!(s.contains("2.00x"));
        assert!(s.contains("1.00x"));
    }
}
