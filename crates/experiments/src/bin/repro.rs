//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [fig2|fig3|fig4|tables|summary|extensions|crash_sweep|crossover|replication|trace|check|netfault|failover|federate|atomize|replicate|all]
//!       [--smoke] [--seed N] [--out DIR] [--trace FILE]
//! ```
//!
//! With `--out DIR` every artifact is also written to
//! `DIR/<artifact>.md` and the raw grid records to `DIR/records.csv`.
//! With `--trace FILE` the run records behind the artifact are also
//! streamed to `FILE` as JSONL (`crossbid_crossflow::export` schema).
//!
//! `fig3`/`fig4`/`summary` share one grid execution; `fig2` runs the
//! Spark comparison; `tables` runs the threaded-runtime MSR
//! experiment. `--smoke` shrinks everything for a fast check.
//!
//! The `check` artifact runs every built-in checker scenario through
//! the protocol invariant oracle on both runtimes and exits nonzero
//! on any violation:
//!
//! ```text
//! repro check [--iters N] [--seed K]
//! ```
//!
//! The `netfault` artifact sweeps a loss-rate × partition-length grid
//! of lossy-link plans over the same scenarios on both runtimes and
//! exits nonzero unless every run completes all jobs with
//! exactly-once effects and zero violations:
//!
//! ```text
//! repro netfault [--iters N] [--seed K]
//! ```
//!
//! The `failover` artifact sweeps seeded master-crash indices over the
//! same scenarios on both runtimes — the leader dies mid-protocol and
//! an elected standby must finish every job exactly once by log
//! replay — and exits nonzero on any violation, lost job, or sweep in
//! which no crash actually fired:
//!
//! ```text
//! repro failover [--iters N] [--seed K]
//! ```
//!
//! The `federate` artifact sweeps the sharded multi-master federation
//! axis (shard count × spill threshold × membership churn) on both
//! runtimes, then runs the 1000-worker four-master headline scenario
//! and its spilling-disabled control; it exits nonzero on any oracle
//! violation, lost or duplicated hand-off, inert sweep, or if
//! cross-shard spillover fails to beat the saturated single master:
//!
//! ```text
//! repro federate [--iters N] [--seed K] [--smoke]
//! ```
//!
//! The `atomize` artifact sweeps the task-level DAG axis (atomizer +
//! speculative straggler re-bidding) on both runtimes, then runs the
//! headline task-level vs whole-job vs Spark-static comparison; it
//! exits nonzero on any oracle violation, lost task, sweep with no
//! speculative re-bid, or if task-level fails to beat whole-job on
//! the straggler scenario:
//!
//! ```text
//! repro atomize [--iters N] [--seed K] [--smoke]
//! ```
//!
//! The `replicate` artifact sweeps the replicated-data-plane axis
//! (replication factor × holder crash × peer-transfer loss × eviction
//! pressure) on both runtimes, then runs the factor {1,2,3} × crash ×
//! loss headline product; it exits nonzero on any oracle violation,
//! lost or duplicated job, sweep that never completed a
//! re-replication, or headline row with no peer fetch retry:
//!
//! ```text
//! repro replicate [--iters N] [--seed K] [--smoke]
//! ```
//!
//! The `trace` artifact runs one scenario with full observability on
//! either runtime and prints the phase-breakdown table:
//!
//! ```text
//! repro trace [--runtime sim|threaded] [--scheduler S] [--workers W]
//!             [--jobs J] [--n N] [--iterations I] [--seed K]
//!             [--trace FILE]
//! ```
//!
//! The `bench` artifact is the throughput harness: it sweeps worker
//! counts on both runtimes, measures jobs/sec and contest-latency
//! quantiles, and emits a versioned JSON document (see
//! [`crossbid_experiments::bench`]):
//!
//! ```text
//! repro bench [--smoke] [--jobs N] [--threaded-jobs N]
//!             [--workers 7,64,256] [--runtime sim|threaded|both]
//!             [--label STR] [--baseline FILE] [--json FILE]
//! repro bench --check FILE     # schema-validate an existing document
//! ```

use crossbid_experiments::atomize::{self, AtomizeConfig};
use crossbid_experiments::bench::{self, BenchConfig};
use crossbid_experiments::check::{self, CheckConfig};
use crossbid_experiments::failover::{self, FailoverConfig};
use crossbid_experiments::federate::{self, FederateConfig};
use crossbid_experiments::netfault::{self, NetFaultConfig};
use crossbid_experiments::replicate::{self, ReplicateConfig};
use crossbid_experiments::trace_run::{self, RuntimeChoice, TraceRunConfig};
use crossbid_experiments::{
    crash_sweep, crossover, extensions, fig2, fig3, fig4, replication, summary, tables,
    ExperimentConfig,
};
use crossbid_metrics::SchedulerKind;
use crossbid_workload::{JobConfig, WorkerConfig};

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok());
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(d) = &out_dir {
        std::fs::create_dir_all(d).expect("create --out directory");
    }
    let trace_file = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let emit_trace_records = |records: &[crossbid_metrics::RunRecord]| {
        if let Some(path) = &trace_file {
            let f = std::fs::File::create(path).expect("create --trace file");
            let lines = trace_run::write_records_jsonl(f, records).expect("write --trace JSONL");
            eprintln!("[repro] wrote {lines} JSONL lines to {path}");
        }
    };
    let emit = |name: &str, body: &str| {
        println!("{body}");
        if let Some(d) = &out_dir {
            let path = std::path::Path::new(d).join(format!("{name}.md"));
            std::fs::write(&path, body).expect("write artifact");
            eprintln!("[repro] wrote {}", path.display());
        }
    };
    let emit_records = |records: &[crossbid_metrics::RunRecord]| {
        if let Some(d) = &out_dir {
            let headers = [
                "scheduler",
                "worker_config",
                "job_config",
                "iteration",
                "makespan_secs",
                "cache_misses",
                "cache_hits",
                "data_load_mb",
                "control_messages",
            ];
            let rows: Vec<Vec<String>> = records
                .iter()
                .map(|r| {
                    vec![
                        r.scheduler.name().to_string(),
                        r.worker_config.clone(),
                        r.job_config.clone(),
                        r.iteration.to_string(),
                        format!("{:.3}", r.makespan_secs),
                        r.cache_misses.to_string(),
                        r.cache_hits.to_string(),
                        format!("{:.3}", r.data_load_mb),
                        r.control_messages.to_string(),
                    ]
                })
                .collect();
            let csv = crossbid_metrics::render_csv(&headers, &rows);
            let path = std::path::Path::new(d).join("records.csv");
            std::fs::write(&path, csv).expect("write records.csv");
            eprintln!("[repro] wrote {}", path.display());
        }
    };

    let mut cfg = if smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }

    let t0 = std::time::Instant::now();
    match what.as_str() {
        "fig2" => {
            let (rows, records) = fig2::run(&cfg);
            emit("fig2", &fig2::render(&rows));
            emit_records(&records);
        }
        "fig3" => {
            let (rows, records) = fig3::run(&cfg);
            emit("fig3", &fig3::render(&rows));
            emit_records(&records);
            emit_trace_records(&records);
        }
        "fig4" => {
            let (rows, records) = fig4::run(&cfg);
            emit("fig4", &fig4::render(&rows));
            emit_records(&records);
        }
        "summary" => {
            let (_, records) = fig3::run(&cfg);
            emit("summary", &summary::render(&summary::compute(&records)));
            emit_records(&records);
        }
        "extensions" => {
            let rows = extensions::run_faults(&cfg);
            emit("extensions", &extensions::render_faults(&rows));
        }
        "crash_sweep" => {
            let exp = if smoke {
                crash_sweep::CrashSweepExperiment::smoke()
            } else {
                crash_sweep::CrashSweepExperiment::default()
            };
            let cells = crash_sweep::run(&exp);
            emit("crash_sweep", &crash_sweep::render(&cells));
            let records: Vec<crossbid_metrics::RunRecord> =
                cells.iter().map(|c| c.record.clone()).collect();
            emit_trace_records(&records);
        }
        "crossover" => {
            let points = crossover::run(&cfg);
            emit("crossover", &crossover::render(&points));
        }
        "replication" => {
            let reps = args
                .iter()
                .position(|a| a == "--reps")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(5);
            let rs = replication::run(&cfg, reps);
            emit("replication", &replication::render(&rs));
        }
        "tables" => {
            let exp = if smoke {
                tables::MsrExperiment::smoke()
            } else {
                tables::MsrExperiment::default()
            };
            let res = tables::run(&exp);
            emit("tables", &tables::render(&res));
        }
        "check" => {
            let mut ccfg = CheckConfig::default();
            if let Some(v) = args
                .iter()
                .position(|a| a == "--iters")
                .and_then(|i| args.get(i + 1))
            {
                ccfg.iters = v.parse().unwrap_or_else(|e| die(&format!("--iters: {e}")));
            }
            if let Some(s) = seed {
                ccfg.seed = s;
            }
            if smoke {
                ccfg.iters = ccfg.iters.min(2);
            }
            let report = check::run(&ccfg);
            emit("check", &report.body);
            if !report.ok {
                eprintln!("[repro] check FAILED");
                std::process::exit(1);
            }
        }
        "netfault" => {
            let mut ncfg = NetFaultConfig::default();
            if let Some(v) = args
                .iter()
                .position(|a| a == "--iters")
                .and_then(|i| args.get(i + 1))
            {
                ncfg.iters = v.parse().unwrap_or_else(|e| die(&format!("--iters: {e}")));
            }
            if let Some(s) = seed {
                ncfg.seed = s;
            }
            if smoke {
                ncfg.iters = ncfg.iters.min(1);
            }
            let report = netfault::run(&ncfg);
            emit("netfault", &report.body);
            if !report.ok {
                eprintln!("[repro] netfault FAILED");
                std::process::exit(1);
            }
        }
        "failover" => {
            let mut fcfg = FailoverConfig::default();
            if let Some(v) = args
                .iter()
                .position(|a| a == "--iters")
                .and_then(|i| args.get(i + 1))
            {
                fcfg.iters = v.parse().unwrap_or_else(|e| die(&format!("--iters: {e}")));
            }
            if let Some(s) = seed {
                fcfg.seed = s;
            }
            if smoke {
                fcfg.iters = fcfg.iters.min(2);
            }
            let report = failover::run(&fcfg);
            emit("failover", &report.body);
            if !report.ok {
                eprintln!("[repro] failover FAILED");
                std::process::exit(1);
            }
        }
        "federate" => {
            let mut fcfg = if smoke {
                FederateConfig::smoke()
            } else {
                FederateConfig::default()
            };
            if let Some(v) = args
                .iter()
                .position(|a| a == "--iters")
                .and_then(|i| args.get(i + 1))
            {
                fcfg.iters = v.parse().unwrap_or_else(|e| die(&format!("--iters: {e}")));
            }
            if let Some(s) = seed {
                fcfg.seed = s;
            }
            let report = federate::run(&fcfg);
            emit("federate", &report.body);
            if !report.ok {
                eprintln!("[repro] federate FAILED");
                std::process::exit(1);
            }
        }
        "replicate" => {
            let mut rcfg = if smoke {
                ReplicateConfig::smoke()
            } else {
                ReplicateConfig::default()
            };
            if let Some(v) = args
                .iter()
                .position(|a| a == "--iters")
                .and_then(|i| args.get(i + 1))
            {
                rcfg.iters = v.parse().unwrap_or_else(|e| die(&format!("--iters: {e}")));
            }
            if let Some(s) = seed {
                rcfg.seed = s;
            }
            let report = replicate::run(&rcfg);
            emit("replicate", &report.body);
            if !report.ok {
                eprintln!("[repro] replicate FAILED");
                std::process::exit(1);
            }
        }
        "atomize" => {
            let mut acfg = if smoke {
                AtomizeConfig::smoke()
            } else {
                AtomizeConfig::default()
            };
            if let Some(v) = args
                .iter()
                .position(|a| a == "--iters")
                .and_then(|i| args.get(i + 1))
            {
                acfg.iters = v.parse().unwrap_or_else(|e| die(&format!("--iters: {e}")));
            }
            if let Some(s) = seed {
                acfg.seed = s;
            }
            let report = atomize::run(&acfg);
            emit("atomize", &report.body);
            if !report.ok {
                eprintln!("[repro] atomize FAILED");
                std::process::exit(1);
            }
        }
        "trace" => {
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
            };
            let mut tcfg = TraceRunConfig {
                seed: seed.unwrap_or(0xC0FFEE),
                ..TraceRunConfig::default()
            };
            if smoke {
                tcfg.n_jobs = 12;
            }
            if let Some(v) = flag("--runtime") {
                tcfg.runtime = RuntimeChoice::from_name(v)
                    .unwrap_or_else(|| die(&format!("unknown runtime '{v}' (sim|threaded)")));
            }
            if let Some(v) = flag("--scheduler") {
                tcfg.scheduler = SchedulerKind::from_name(v)
                    .unwrap_or_else(|| die(&format!("unknown scheduler '{v}'")));
            }
            if let Some(v) = flag("--workers") {
                tcfg.worker_config = WorkerConfig::ALL
                    .into_iter()
                    .find(|w| w.name() == v)
                    .unwrap_or_else(|| die(&format!("unknown worker config '{v}'")));
            }
            if let Some(v) = flag("--jobs") {
                tcfg.job_config = JobConfig::ALL
                    .into_iter()
                    .find(|j| j.name() == v)
                    .unwrap_or_else(|| die(&format!("unknown job config '{v}'")));
            }
            if let Some(v) = flag("--n") {
                tcfg.n_jobs = v.parse().unwrap_or_else(|e| die(&format!("--n: {e}")));
            }
            if let Some(v) = flag("--iterations") {
                tcfg.iterations = v
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--iterations: {e}")));
            }
            let runs = trace_run::run(&tcfg).unwrap_or_else(|e| die(&e));
            emit("trace", &trace_run::render_phase_table(&runs));
            if let Some(path) = &trace_file {
                let f = std::fs::File::create(path).expect("create --trace file");
                let lines = trace_run::write_streams(f, &runs).expect("write --trace JSONL");
                eprintln!("[repro] wrote {lines} JSONL lines to {path}");
            } else {
                let lines = trace_run::write_streams(std::io::stdout().lock(), &runs)
                    .expect("write JSONL to stdout");
                eprintln!("[repro] streamed {lines} JSONL lines to stdout");
            }
        }
        "all" => {
            let (rows2, _) = fig2::run(&cfg);
            emit("fig2", &fig2::render(&rows2));
            let (rows3, records) = fig3::run(&cfg);
            emit("fig3", &fig3::render(&rows3));
            emit("fig4", &fig4::render(&fig4::rows_from_records(&records)));
            emit("summary", &summary::render(&summary::compute(&records)));
            emit_records(&records);
            let exp = if smoke {
                tables::MsrExperiment::smoke()
            } else {
                tables::MsrExperiment::default()
            };
            let res = tables::run(&exp);
            emit("tables", &tables::render(&res));
            let rows = extensions::run_faults(&cfg);
            emit("extensions", &extensions::render_faults(&rows));
            let sweep = if smoke {
                crash_sweep::CrashSweepExperiment::smoke()
            } else {
                crash_sweep::CrashSweepExperiment::default()
            };
            let cells = crash_sweep::run(&sweep);
            emit("crash_sweep", &crash_sweep::render(&cells));
            let points = crossover::run(&cfg);
            emit("crossover", &crossover::render(&points));
        }
        "bench" => {
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
            };
            if let Some(path) = flag("--check") {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("--check {path}: {e}")));
                match bench::BenchDoc::parse(&text) {
                    Ok(doc) => {
                        eprintln!(
                            "[repro] bench --check {path}: ok ({} current rows, speedup_sim_64={:?})",
                            doc.current.rows.len(),
                            doc.speedup_sim_64
                        );
                        return;
                    }
                    Err(e) => die(&format!("--check {path}: schema drift: {e}")),
                }
            }
            let mut bcfg = if smoke {
                BenchConfig::smoke()
            } else {
                BenchConfig::full()
            };
            if let Some(s) = seed {
                bcfg.seed = s;
            }
            if let Some(v) = flag("--jobs") {
                bcfg.sim_jobs = v.parse().unwrap_or_else(|e| die(&format!("--jobs: {e}")));
            }
            if let Some(v) = flag("--threaded-jobs") {
                bcfg.threaded_jobs = v
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--threaded-jobs: {e}")));
            }
            if let Some(v) = flag("--workers") {
                bcfg.workers = v
                    .split(',')
                    .map(|w| w.trim().parse())
                    .collect::<Result<Vec<usize>, _>>()
                    .unwrap_or_else(|e| die(&format!("--workers: {e}")));
            }
            if let Some(v) = flag("--runtime") {
                bcfg.runtimes = match v.as_str() {
                    "sim" => vec![RuntimeChoice::Sim],
                    "threaded" => vec![RuntimeChoice::Threaded],
                    "both" => vec![RuntimeChoice::Sim, RuntimeChoice::Threaded],
                    other => die(&format!("unknown runtime '{other}' (sim|threaded|both)")),
                };
            }
            if let Some(v) = flag("--label") {
                bcfg.label = v.clone();
            }
            let baseline = flag("--baseline").map(|path| {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("--baseline {path}: {e}")));
                let doc = bench::BenchDoc::parse(&text)
                    .unwrap_or_else(|e| die(&format!("--baseline {path}: {e}")));
                doc.current
            });
            let current = bench::run_sweep(&bcfg);
            let doc = bench::BenchDoc::assemble(baseline, current);
            let body = doc.render();
            if let Some(path) = flag("--json") {
                std::fs::write(path, &body).expect("write --json file");
                eprintln!("[repro] wrote {path}");
            } else {
                println!("{body}");
            }
        }
        other => {
            eprintln!("unknown artifact '{other}'; use fig2|fig3|fig4|tables|summary|extensions|crash_sweep|crossover|replication|trace|check|netfault|failover|federate|atomize|replicate|bench|all");
            std::process::exit(2);
        }
    }
    eprintln!("[repro] {what} done in {:.1}s", t0.elapsed().as_secs_f64());
}
