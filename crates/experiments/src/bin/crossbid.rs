//! `crossbid` — run a custom experiment from the command line.
//!
//! ```text
//! crossbid [--scheduler S] [--workers W] [--jobs J] [--n N]
//!          [--iterations I] [--seed K] [--mean-interval SECS]
//!          [--gantt] [--csv]
//!
//!   S: bidding|baseline|spark-static|spark-locality|matchmaking|delay|random|all
//!   W: all-equal|one-fast|one-slow|fast-slow
//!   J: all_diff_equal|all_diff_large|all_diff_small|80pct_large|80pct_small
//! ```
//!
//! Prints one metrics row per iteration (and optionally a Gantt chart
//! of the last iteration, or CSV output).

use crossbid_crossflow::{EngineConfig, RunSpec, Workflow};
use crossbid_experiments::runner::allocator_for;
use crossbid_metrics::table::f2;
use crossbid_metrics::{render_csv, SchedulerKind, Table};
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

struct Args {
    schedulers: Vec<SchedulerKind>,
    workers: WorkerConfig,
    jobs: JobConfig,
    n: usize,
    iterations: u32,
    seed: u64,
    mean_interval: f64,
    gantt: bool,
    csv: bool,
}

fn parse_scheduler(s: &str) -> Option<SchedulerKind> {
    SchedulerKind::ALL.into_iter().find(|k| k.name() == s)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedulers: vec![SchedulerKind::Bidding, SchedulerKind::Baseline],
        workers: WorkerConfig::AllEqual,
        jobs: JobConfig::Pct80Large,
        n: 120,
        iterations: 3,
        seed: 0xC0FFEE,
        mean_interval: 1.5,
        gantt: false,
        csv: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--scheduler" => {
                let v = value(&argv, i, "--scheduler")?;
                args.schedulers = if v == "all" {
                    SchedulerKind::ALL.to_vec()
                } else {
                    vec![parse_scheduler(&v).ok_or(format!("unknown scheduler '{v}'"))?]
                };
                i += 2;
            }
            "--workers" => {
                let v = value(&argv, i, "--workers")?;
                args.workers = WorkerConfig::ALL
                    .into_iter()
                    .find(|w| w.name() == v)
                    .ok_or(format!("unknown worker config '{v}'"))?;
                i += 2;
            }
            "--jobs" => {
                let v = value(&argv, i, "--jobs")?;
                args.jobs = JobConfig::ALL
                    .into_iter()
                    .find(|j| j.name() == v)
                    .ok_or(format!("unknown job config '{v}'"))?;
                i += 2;
            }
            "--n" => {
                args.n = value(&argv, i, "--n")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--iterations" => {
                args.iterations = value(&argv, i, "--iterations")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--seed" => {
                args.seed = value(&argv, i, "--seed")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--mean-interval" => {
                args.mean_interval = value(&argv, i, "--mean-interval")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--gantt" => {
                args.gantt = true;
                i += 1;
            }
            "--csv" => {
                args.csv = true;
                i += 1;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: crossbid [--scheduler S|all] [--workers W] [--jobs J] \
                            [--n N] [--iterations I] [--seed K] [--mean-interval SECS] \
                            [--gantt] [--csv]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let headers = [
        "scheduler",
        "iter",
        "time (s)",
        "misses",
        "hits",
        "data (MB)",
        "msgs",
        "wait (s)",
        "fairness",
    ];
    let mut table = Table::new(
        format!(
            "{} × {} — {} jobs, {} iterations, seed {}",
            args.workers, args.jobs, args.n, args.iterations, args.seed
        ),
        &headers,
    );
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for sched in &args.schedulers {
        let alloc = allocator_for(*sched);
        let engine = EngineConfig {
            trace: args.gantt,
            ..EngineConfig::default()
        };
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let stream = args.jobs.generate(
            args.seed,
            args.n,
            task,
            &ArrivalProcess::Poisson {
                mean_interval_secs: args.mean_interval,
            },
        );
        let mut session = RunSpec::builder()
            .workers(args.workers.paper_specs())
            .engine(engine)
            .names(args.workers.name(), args.jobs.name())
            .seed(args.seed)
            .build()
            .sim();
        for _ in 0..args.iterations {
            let r = session
                .run_iteration(&mut wf, alloc.as_ref(), stream.arrivals.clone())
                .record;
            let row = vec![
                sched.name().to_string(),
                r.iteration.to_string(),
                f2(r.makespan_secs),
                r.cache_misses.to_string(),
                r.cache_hits.to_string(),
                f2(r.data_load_mb),
                r.control_messages.to_string(),
                f2(r.mean_queue_wait_secs),
                format!("{:.3}", r.jains_fairness()),
            ];
            csv_rows.push(row.clone());
            table.row(row);
        }
    }

    if args.csv {
        print!("{}", render_csv(&headers, &csv_rows));
    } else {
        println!("{}", table.render());
    }
}
