//! Figure 3 — "Accumulated results per workload per algorithm":
//! average total execution time (3a), average cache-miss count (3b)
//! and average data load (3c) per job configuration, Bidding vs
//! Baseline, averaged over all worker configurations and iterations.

use crossbid_metrics::table::{f2, fpct};
use crossbid_metrics::{Aggregator, RunRecord, SchedulerKind, Table};

use crate::config::ExperimentConfig;
use crate::runner::{full_grid, run_grid};

/// One row of the Figure 3 data: a job configuration with both
/// schedulers' per-run averages.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Job configuration name.
    pub workload: String,
    /// Average end-to-end seconds: (bidding, baseline).
    pub time_secs: (f64, f64),
    /// Average cache misses per run: (bidding, baseline).
    pub misses: (f64, f64),
    /// Average data load MB per run: (bidding, baseline).
    pub data_mb: (f64, f64),
}

impl Fig3Row {
    /// Baseline-relative speedup percentage of the Bidding Scheduler.
    pub fn speedup_pct(&self) -> f64 {
        crossbid_metrics::percent_reduction(self.time_secs.1, self.time_secs.0)
    }

    /// Percentage reduction in cache misses.
    pub fn miss_reduction_pct(&self) -> f64 {
        crossbid_metrics::percent_reduction(self.misses.1, self.misses.0)
    }

    /// Percentage reduction in data load.
    pub fn data_reduction_pct(&self) -> f64 {
        crossbid_metrics::percent_reduction(self.data_mb.1, self.data_mb.0)
    }
}

/// Compute the Figure 3 rows from a set of grid records.
pub fn rows_from_records(records: &[RunRecord]) -> Vec<Fig3Row> {
    let mut agg = Aggregator::new();
    agg.push_all_by_job_config(records.iter());
    agg.keys()
        .into_iter()
        .filter_map(|key| {
            let bid = agg.get(SchedulerKind::Bidding, &key)?;
            let base = agg.get(SchedulerKind::Baseline, &key)?;
            Some(Fig3Row {
                workload: key,
                time_secs: (bid.makespan.mean(), base.makespan.mean()),
                misses: (bid.cache_misses.mean(), base.cache_misses.mean()),
                data_mb: (bid.data_load_mb.mean(), base.data_load_mb.mean()),
            })
        })
        .collect()
}

/// Run the full grid and produce the Figure 3 rows.
pub fn run(cfg: &ExperimentConfig) -> (Vec<Fig3Row>, Vec<RunRecord>) {
    let cells = full_grid();
    let records: Vec<RunRecord> = run_grid(cfg, &cells).into_iter().flatten().collect();
    (rows_from_records(&records), records)
}

/// Render the three charts as tables (3a, 3b, 3c).
pub fn render(rows: &[Fig3Row]) -> String {
    let mut t_time = Table::new(
        "Figure 3a — average total execution time per workload (s)",
        &["workload", "bidding", "baseline", "speedup"],
    );
    let mut t_miss = Table::new(
        "Figure 3b — average cache-miss count per workload",
        &["workload", "bidding", "baseline", "reduction"],
    );
    let mut t_data = Table::new(
        "Figure 3c — average data load per workload (MB)",
        &["workload", "bidding", "baseline", "reduction"],
    );
    for r in rows {
        t_time.row([
            r.workload.clone(),
            f2(r.time_secs.0),
            f2(r.time_secs.1),
            fpct(r.speedup_pct()),
        ]);
        t_miss.row([
            r.workload.clone(),
            f2(r.misses.0),
            f2(r.misses.1),
            fpct(r.miss_reduction_pct()),
        ]);
        t_data.row([
            r.workload.clone(),
            f2(r.data_mb.0),
            f2(r.data_mb.1),
            fpct(r.data_reduction_pct()),
        ]);
    }
    format!(
        "{}\n{}\n{}",
        t_time.render(),
        t_miss.render(),
        t_data.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: SchedulerKind, job: &str, t: f64, m: u64, d: f64) -> RunRecord {
        RunRecord {
            scheduler: s,
            worker_config: "all-equal".into(),
            job_config: job.into(),
            iteration: 0,
            seed: 0,
            makespan_secs: t,
            data_load_mb: d,
            cache_misses: m,
            cache_hits: 0,
            evictions: 0,
            jobs_completed: 1,
            control_messages: 0,
            contests_timed_out: 0,
            contests_fallback: 0,
            mean_queue_wait_secs: 0.0,
            worker_busy_frac: vec![],
            jobs_redistributed: 0,
            worker_crashes: 0,
            recovery_secs: 0.0,
        }
    }

    #[test]
    fn rows_pair_schedulers_per_workload() {
        let records = vec![
            rec(SchedulerKind::Bidding, "a", 100.0, 10, 1000.0),
            rec(SchedulerKind::Baseline, "a", 200.0, 20, 2000.0),
            rec(SchedulerKind::Bidding, "b", 50.0, 5, 500.0),
            // workload "b" has no baseline record → dropped.
        ];
        let rows = rows_from_records(&records);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.workload, "a");
        assert!((r.speedup_pct() - 50.0).abs() < 1e-9);
        assert!((r.miss_reduction_pct() - 50.0).abs() < 1e-9);
        assert!((r.data_reduction_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_three_charts() {
        let rows = rows_from_records(&[
            rec(SchedulerKind::Bidding, "x", 10.0, 1, 10.0),
            rec(SchedulerKind::Baseline, "x", 20.0, 2, 20.0),
        ]);
        let s = render(&rows);
        assert!(s.contains("Figure 3a"));
        assert!(s.contains("Figure 3b"));
        assert!(s.contains("Figure 3c"));
        assert!(s.contains("50.0%"));
    }
}
