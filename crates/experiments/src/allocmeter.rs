//! Heap-allocation meter for the `repro bench` harness (compiled only
//! with the `bench-alloc` feature).
//!
//! Installs a counting [`GlobalAlloc`] wrapper around the system
//! allocator so a bench run can report *allocations per job* — the
//! metric the hot-path work optimises for (slab reuse should hold it
//! flat as worker counts grow). Counters are process-global relaxed
//! atomics; the harness reads deltas around a run, so concurrent
//! worker threads are attributed to whichever run is in flight (bench
//! rows run one at a time).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts allocation events and tracks
/// live / peak bytes.
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = CURRENT_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    // Lossy peak update is fine: a stale read can only under-report
    // by another thread's in-flight delta, never corrupt the counter.
    if live > PEAK_BYTES.load(Ordering::Relaxed) {
        PEAK_BYTES.store(live, Ordering::Relaxed);
    }
}

fn on_dealloc(size: usize) {
    CURRENT_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Total allocation events since process start (monotonic; read
/// deltas around the region of interest).
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes currently live on the heap.
pub fn current_bytes() -> u64 {
    CURRENT_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_move_when_the_heap_is_used() {
        let a0 = allocs();
        let v: Vec<u64> = (0..4096).collect();
        assert!(v.len() == 4096);
        assert!(allocs() > a0, "a fresh Vec must register");
        assert!(peak_bytes() >= 4096 * 8);
        drop(v);
        // current_bytes is shared across threads; just check it reads.
        let _ = current_bytes();
    }
}
