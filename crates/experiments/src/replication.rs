//! Seed-replication study: how robust are the headline conclusions to
//! the randomness of the workload and the noise scheme?
//!
//! The paper reports single numbers from three iterations on one
//! infrastructure sample. Because our substrate is fully seeded we can
//! do better: re-run the whole evaluation grid under `R` independent
//! root seeds and report the mean and a 95% confidence interval for
//! each headline quantity. A reproduction claim is only as good as its
//! error bars.

use crossbid_simcore::{SeedSequence, Welford};

use crate::config::ExperimentConfig;
use crate::runner::{full_grid, run_grid};
use crate::summary::{compute, Summary};

/// Aggregated headline quantities across replications.
#[derive(Debug, Clone)]
pub struct ReplicatedSummary {
    /// Mean speedup percentage across seeds.
    pub mean_speedup_pct: Welford,
    /// Cache-miss reduction percentage across seeds.
    pub miss_reduction_pct: Welford,
    /// Data-load reduction percentage across seeds.
    pub data_reduction_pct: Welford,
    /// Maximum per-cell speedup across seeds.
    pub max_speedup: Welford,
    /// The individual summaries.
    pub summaries: Vec<Summary>,
}

/// Run the grid under `replications` independent seeds.
pub fn run(cfg: &ExperimentConfig, replications: u32) -> ReplicatedSummary {
    let seq = SeedSequence::new(cfg.seed);
    let mut out = ReplicatedSummary {
        mean_speedup_pct: Welford::new(),
        miss_reduction_pct: Welford::new(),
        data_reduction_pct: Welford::new(),
        max_speedup: Welford::new(),
        summaries: Vec::new(),
    };
    for r in 0..replications.max(1) {
        let rep_cfg = ExperimentConfig {
            seed: seq.seed_for(9000 + r as u64),
            ..cfg.clone()
        };
        let records: Vec<_> = run_grid(&rep_cfg, &full_grid())
            .into_iter()
            .flatten()
            .collect();
        let s = compute(&records);
        out.mean_speedup_pct.push(s.mean_speedup_pct);
        out.miss_reduction_pct.push(s.miss_reduction_pct);
        out.data_reduction_pct.push(s.data_reduction_pct);
        out.max_speedup.push(s.max_speedup);
        out.summaries.push(s);
    }
    out
}

/// Render mean ± 95% CI per headline quantity.
pub fn render(rs: &ReplicatedSummary) -> String {
    let mut t = crossbid_metrics::Table::new(
        format!(
            "Replication study — headline numbers over {} independent seeds (mean ± 95% CI)",
            rs.summaries.len()
        ),
        &["metric", "mean", "±95% CI", "paper"],
    );
    let row =
        |t: &mut crossbid_metrics::Table, name: &str, w: &Welford, unit: &str, paper: &str| {
            t.row([
                name.to_string(),
                format!("{:.1}{unit}", w.mean()),
                format!("±{:.1}", w.ci95_half_width()),
                paper.to_string(),
            ]);
        };
    row(&mut t, "mean speedup", &rs.mean_speedup_pct, "%", "~24.5%");
    row(
        &mut t,
        "cache-miss reduction",
        &rs.miss_reduction_pct,
        "%",
        "~49%",
    );
    row(
        &mut t,
        "data-load reduction",
        &rs.data_reduction_pct,
        "%",
        "~45.3%",
    );
    row(&mut t, "max speedup", &rs.max_speedup, "x", "up to 3.57x");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_hold_across_seeds() {
        let cfg = ExperimentConfig {
            n_jobs: 30,
            iterations: 2,
            ..ExperimentConfig::default()
        };
        let rs = run(&cfg, 4);
        assert_eq!(rs.summaries.len(), 4);
        // Bidding wins under every seed — the qualitative claim is
        // seed-robust even at smoke scale.
        assert!(
            rs.mean_speedup_pct.min() > 0.0,
            "a seed flipped the conclusion: min {:.1}%",
            rs.mean_speedup_pct.min()
        );
        assert!(rs.miss_reduction_pct.mean() > 0.0);
        assert!(rs.data_reduction_pct.mean() > 0.0);
        let rendered = render(&rs);
        assert!(rendered.contains("Replication study"));
        assert!(rendered.contains("±"));
    }
}
