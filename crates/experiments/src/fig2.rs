//! Figure 2 — "Execution times of MSR in Spark compared to Crossflow
//! Baseline": four column groups contrasting Spark's centralized
//! up-front allocation with Crossflow's opinionated pull scheduling.
//!
//! The paper's groups:
//!
//! 1. *fast-slow* workers + large repositories → Spark 7.94× slower;
//! 2. *all-equal* workers + small repositories → Crossflow 2.3× faster;
//! 3. *all-equal* workers + non-repetitive dataset (equal sizes);
//! 4. varying (fast-slow) speeds + repetitive dataset (80 % of jobs
//!    need the same repository).

use crossbid_metrics::table::f2;
use crossbid_metrics::{speedup, RunRecord, SchedulerKind, Table};
use crossbid_workload::{JobConfig, WorkerConfig};

use crate::config::ExperimentConfig;
use crate::runner::{run_grid, Cell};

/// One Figure 2 column group.
#[derive(Debug, Clone)]
pub struct Fig2Group {
    /// Group label (paper ordering).
    pub label: &'static str,
    /// Cluster shape.
    pub worker_config: WorkerConfig,
    /// Job stream shape.
    pub job_config: JobConfig,
    /// Average seconds: (crossflow baseline, spark).
    pub time_secs: (f64, f64),
}

impl Fig2Group {
    /// Spark time / Crossflow time (the paper's "Spark takes 7.94x
    /// longer" phrasing).
    pub fn spark_slowdown(&self) -> f64 {
        speedup(self.time_secs.1, self.time_secs.0)
    }
}

/// The paper's four column groups.
pub fn groups() -> [(&'static str, WorkerConfig, JobConfig); 4] {
    [
        (
            "fast-slow + large",
            WorkerConfig::FastSlow,
            JobConfig::AllDiffLarge,
        ),
        (
            "all-equal + small",
            WorkerConfig::AllEqual,
            JobConfig::AllDiffSmall,
        ),
        (
            "all-equal + non-repetitive",
            WorkerConfig::AllEqual,
            JobConfig::AllDiffEqual,
        ),
        (
            "varying + 80% repetitive",
            WorkerConfig::FastSlow,
            JobConfig::Pct80Large,
        ),
    ]
}

/// Run the comparison and compute the groups.
pub fn run(cfg: &ExperimentConfig) -> (Vec<Fig2Group>, Vec<RunRecord>) {
    let mut cells = Vec::new();
    for (_, wc, jc) in groups() {
        for sched in [SchedulerKind::Baseline, SchedulerKind::SparkStatic] {
            cells.push(Cell {
                worker_config: wc,
                job_config: jc,
                scheduler: sched,
            });
        }
    }
    let results = run_grid(cfg, &cells);
    let records: Vec<RunRecord> = results.into_iter().flatten().collect();
    let rows = groups()
        .iter()
        .map(|(label, wc, jc)| {
            let avg = |sched: SchedulerKind| {
                let rs: Vec<&RunRecord> = records
                    .iter()
                    .filter(|r| {
                        r.scheduler == sched
                            && r.worker_config == wc.name()
                            && r.job_config == jc.name()
                    })
                    .collect();
                rs.iter().map(|r| r.makespan_secs).sum::<f64>() / rs.len().max(1) as f64
            };
            Fig2Group {
                label,
                worker_config: *wc,
                job_config: *jc,
                time_secs: (
                    avg(SchedulerKind::Baseline),
                    avg(SchedulerKind::SparkStatic),
                ),
            }
        })
        .collect();
    (rows, records)
}

/// Render the Figure 2 table.
pub fn render(rows: &[Fig2Group]) -> String {
    let mut t = Table::new(
        "Figure 2 — MSR execution time: Spark vs Crossflow Baseline (s)",
        &["group", "crossflow", "spark", "spark/crossflow"],
    );
    for r in rows {
        t.row([
            r.label.to_string(),
            f2(r.time_secs.0),
            f2(r.time_secs.1),
            format!("{:.2}x", r.spark_slowdown()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_groups_matching_the_paper() {
        let g = groups();
        assert_eq!(g.len(), 4);
        assert_eq!(g[0].1, WorkerConfig::FastSlow);
        assert_eq!(g[1].2, JobConfig::AllDiffSmall);
        assert!(g[3].2.is_repetitive());
    }

    #[test]
    fn slowdown_is_spark_over_crossflow() {
        let g = Fig2Group {
            label: "x",
            worker_config: WorkerConfig::AllEqual,
            job_config: JobConfig::AllDiffSmall,
            time_secs: (100.0, 794.0),
        };
        assert!((g.spark_slowdown() - 7.94).abs() < 1e-12);
    }
}
