//! `repro bench` — first-party throughput harness.
//!
//! Drives the bidding protocol on BOTH runtimes (deterministic sim and
//! real threads) across worker counts, measures through the existing
//! `crossbid-metrics` registry, and emits a versioned JSON document
//! (schema [`SCHEMA`]) whose rows record:
//!
//! | field | meaning |
//! |---|---|
//! | `runtime` | `sim`, `threaded`, `sim-fed<N>` (the N-master federation row), `sim-dag` (the atomized task-stream row), or `sim-repl` (the factor-2 replicated-stream row) |
//! | `workers` | cluster size |
//! | `jobs` | jobs driven through the run (tasks, for the `sim-dag` row) |
//! | `wall_secs` | wall-clock time of the run |
//! | `jobs_per_sec` | `jobs / wall_secs` — the headline throughput |
//! | `contest_p50_secs`, `contest_p99_secs` | bid-latency quantiles from `contest/bid_latency_secs` |
//! | `events` | events delivered (sim) / messages processed (threaded) |
//! | `peak_rss_mb` | `VmHWM` from `/proc/self/status` — a process-wide high-water proxy, monotone across rows |
//! | `allocs_per_job` | heap allocations per job (`null` unless built with `--features bench-alloc`) |
//!
//! The checked-in `BENCH_6.json` holds two sweeps — `baseline` (the
//! pre-optimization tree) and `current` — so the perf trajectory is
//! recorded in-repo, plus the derived `speedup_sim_64` ratio the
//! acceptance bar reads.

use std::time::Instant;

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{EngineConfig, RunSpec, Runtime, Workflow};
use crossbid_metrics::{Json, JsonError};
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

use crate::trace_run::RuntimeChoice;

/// Version tag of the bench document. Bump on any row-shape change.
pub const SCHEMA: &str = "crossbid-bench/v1";

/// One sweep's shape.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Which runtimes to drive.
    pub runtimes: Vec<RuntimeChoice>,
    /// Cluster sizes to sweep.
    pub workers: Vec<usize>,
    /// Jobs per sim row.
    pub sim_jobs: usize,
    /// Jobs per threaded row (real threads pay real per-message cost,
    /// so rows stay smaller; each row self-describes its job count).
    pub threaded_jobs: usize,
    /// Root seed (workload and run seeds derive from it).
    pub seed: u64,
    /// Human label for the sweep (recorded in the document).
    pub label: String,
    /// When ≥ 2, append a federation row: the same workload routed
    /// through this many shard masters (runtime `sim-fed<N>`), at the
    /// largest swept cluster size. `0` disables it.
    pub fed_shards: usize,
    /// When > 0, append an atomizer row (runtime `sim-dag`): this
    /// many DAG arrivals atomized into task-level jobs on the sim
    /// engine, at the largest swept cluster size. The row prices the
    /// whole task pipeline — registration, gated release, per-task
    /// contests, output credit, straggler sweeps. `0` disables it.
    pub dag_jobs: usize,
    /// When > 0, append a replicated-stream row (runtime `sim-repl`):
    /// this many jobs over a hot 32-artifact working set with factor-2
    /// replication enabled on the sim engine, at the largest swept
    /// cluster size. The row prices the whole data plane — replica
    /// bookkeeping, pin upkeep, peer-priced bids, top-up repairs. `0`
    /// disables it.
    pub repl_jobs: usize,
}

impl BenchConfig {
    /// The full sweep behind the checked-in `BENCH_6.json`.
    pub fn full() -> Self {
        BenchConfig {
            runtimes: vec![RuntimeChoice::Sim, RuntimeChoice::Threaded],
            workers: vec![7, 64, 256],
            sim_jobs: 100_000,
            threaded_jobs: 10_000,
            seed: 0xBE7C4,
            label: "full".to_string(),
            fed_shards: 2,
            dag_jobs: 2_000,
            repl_jobs: 2_000,
        }
    }

    /// The reduced sweep CI runs (`repro bench --smoke`).
    pub fn smoke() -> Self {
        BenchConfig {
            sim_jobs: 10_000,
            threaded_jobs: 1_000,
            label: "smoke".to_string(),
            dag_jobs: 200,
            repl_jobs: 200,
            ..Self::full()
        }
    }
}

/// One measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    pub runtime: String,
    pub workers: usize,
    pub jobs: usize,
    pub wall_secs: f64,
    pub jobs_per_sec: f64,
    pub contest_p50_secs: f64,
    pub contest_p99_secs: f64,
    pub events: u64,
    pub peak_rss_mb: f64,
    pub allocs_per_job: Option<f64>,
}

/// A labelled sweep (the `baseline` / `current` sections of the doc).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSweep {
    pub label: String,
    pub rows: Vec<BenchRow>,
}

/// The whole document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    pub baseline: Option<BenchSweep>,
    pub current: BenchSweep,
    /// `current` / `baseline` sim jobs-per-sec at 64 workers, when
    /// both sides have that row (the acceptance-bar ratio).
    pub speedup_sim_64: Option<f64>,
}

/// `VmHWM` from `/proc/self/status`, in MB (0 when unreadable — e.g.
/// non-Linux). Process-wide high-water mark, so it is monotone across
/// rows of a sweep; read it as "the sweep so far fit in this much".
pub fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

#[cfg(feature = "bench-alloc")]
fn alloc_count() -> Option<u64> {
    Some(crate::allocmeter::allocs())
}

#[cfg(not(feature = "bench-alloc"))]
fn alloc_count() -> Option<u64> {
    None
}

/// Run one `(runtime, workers, jobs)` cell and measure it.
pub fn run_row(runtime: RuntimeChoice, workers: usize, jobs: usize, seed: u64) -> BenchRow {
    // Ideal engine: no latency/noise, so the sim row measures pure
    // scheduler + event-loop overhead. The event cap scales with the
    // run (every job triggers a broadcast to all workers plus a bid
    // from each, with generous slack).
    let mut engine = EngineConfig::ideal();
    engine.max_events = (jobs as u64) * (workers as u64 * 6 + 32) + 1_000_000;
    let spec = RunSpec::builder()
        .workers(WorkerConfig::AllEqual.specs(workers))
        .names(
            WorkerConfig::AllEqual.name(),
            JobConfig::AllDiffEqual.name(),
        )
        .seed(seed)
        .engine(engine)
        .time_scale(1e-4)
        .build();
    let mut rt: Box<dyn Runtime> = match runtime {
        RuntimeChoice::Sim => Box::new(spec.sim()),
        RuntimeChoice::Threaded => Box::new(spec.threaded()),
    };
    let allocator = BiddingAllocator::new();
    let mut wf = Workflow::new();
    let task = wf.add_sink("bench");
    let stream = JobConfig::AllDiffEqual.generate(
        seed,
        jobs,
        task,
        &ArrivalProcess::Poisson {
            mean_interval_secs: 0.05,
        },
    );

    let a0 = alloc_count();
    let t0 = Instant::now();
    let out = rt.run_iteration(&mut wf, &allocator, stream.arrivals);
    let wall = t0.elapsed().as_secs_f64();
    let allocs_per_job = match (a0, alloc_count()) {
        (Some(a0), Some(a1)) if jobs > 0 => Some((a1 - a0) as f64 / jobs as f64),
        _ => None,
    };

    let bid_latency = out.metrics.histogram("contest/bid_latency_secs");
    BenchRow {
        runtime: rt.name().to_string(),
        workers,
        jobs,
        wall_secs: wall,
        jobs_per_sec: if wall > 0.0 { jobs as f64 / wall } else { 0.0 },
        contest_p50_secs: bid_latency.map_or(0.0, |h| h.quantile(0.50)),
        contest_p99_secs: bid_latency.map_or(0.0, |h| h.quantile(0.99)),
        events: out.events,
        peak_rss_mb: peak_rss_mb(),
        allocs_per_job,
    }
}

/// Run one federation cell: the sim workload of [`run_row`] addressed
/// entirely to shard 0 of an N-master federation, so the row's
/// throughput includes the routing pre-pass, the spill hand-offs and
/// the merged-log assembly. `workers` is the federation-wide total.
pub fn run_fed_row(shards: usize, workers: usize, jobs: usize, seed: u64) -> BenchRow {
    use crossbid_crossflow::prelude::*;

    let per_shard = (workers / shards).max(1);
    let mut engine = EngineConfig::ideal();
    engine.max_events = (jobs as u64) * (per_shard as u64 * 6 + 32) + 1_000_000;
    let mut spec = FederationSpec::new(
        (0..shards)
            .map(|_| ShardSpec::new(WorkerConfig::AllEqual.specs(per_shard)))
            .collect(),
    );
    spec.engine = engine;
    spec.seed = seed;
    spec.net_seed = seed;
    spec.spill_threshold_secs = 5.0;
    spec.gossip_period_secs = 1.0;
    spec.time_scale = 1e-4;

    let mut proto = Workflow::new();
    let task = proto.add_sink("bench");
    let stream = JobConfig::AllDiffEqual.generate(
        seed,
        jobs,
        task,
        &ArrivalProcess::Poisson {
            mean_interval_secs: 0.05,
        },
    );
    let arrivals: Vec<FedArrival> = stream
        .arrivals
        .into_iter()
        .map(|a| FedArrival {
            at: a.at,
            home: ShardId(0),
            spec: a.spec,
        })
        .collect();

    let a0 = alloc_count();
    let t0 = Instant::now();
    let out = crossbid_crossflow::run_federation(
        &spec,
        arrivals,
        &crossbid_core::BiddingAllocator::new(),
        |_| {
            let mut wf = Workflow::new();
            wf.add_sink("bench");
            wf
        },
    );
    let wall = t0.elapsed().as_secs_f64();
    let allocs_per_job = match (a0, alloc_count()) {
        (Some(a0), Some(a1)) if jobs > 0 => Some((a1 - a0) as f64 / jobs as f64),
        _ => None,
    };

    // Shard 0 holds the burst, so its contest latencies are the row's.
    let bid_latency = out.shards[0].metrics.histogram("contest/bid_latency_secs");
    BenchRow {
        runtime: format!("sim-fed{shards}"),
        workers: per_shard * shards,
        jobs,
        wall_secs: wall,
        jobs_per_sec: if wall > 0.0 { jobs as f64 / wall } else { 0.0 },
        contest_p50_secs: bid_latency.map_or(0.0, |h| h.quantile(0.50)),
        contest_p99_secs: bid_latency.map_or(0.0, |h| h.quantile(0.99)),
        events: out.shards.iter().map(|o| o.events).sum(),
        peak_rss_mb: peak_rss_mb(),
        allocs_per_job,
    }
}

/// Run one atomizer cell: a stream of `dags` map-reduce DAGs
/// atomized into task-level jobs on the sim engine, so the row prices
/// the whole task pipeline — registration, gated release, per-task
/// bidding contests, output credit and straggler sweeps. The row's
/// `jobs` is the number of *tasks* driven (the schedulable unit of an
/// atomized run).
pub fn run_dag_row(workers: usize, dags: usize, seed: u64) -> BenchRow {
    use crossbid_crossflow::RunSpec;
    use crossbid_workload::DagConfig;

    let shape = DagConfig::MapReduceSkew {
        maps: 4,
        reduces: 2,
        skew_factor: 2.0,
    };
    let tasks = shape.tasks_per_dag() * dags;
    let mut engine = EngineConfig::ideal();
    engine.max_events = (tasks as u64) * (workers as u64 * 6 + 32) + 1_000_000;
    let spec = RunSpec::builder()
        .workers(WorkerConfig::AllEqual.specs(workers))
        .names(WorkerConfig::AllEqual.name(), "dag-stream")
        .seed(seed)
        .engine(engine)
        .time_scale(1e-4)
        .build();
    let mut rt = spec.sim();
    let allocator = BiddingAllocator::new();
    let mut wf = Workflow::new();
    let stage = wf.add_sink("bench");
    let arrivals = shape.generate(seed, dags, stage, 0.25);

    let a0 = alloc_count();
    let t0 = Instant::now();
    let out = rt.run_iteration(&mut wf, &allocator, arrivals);
    let wall = t0.elapsed().as_secs_f64();
    let allocs_per_job = match (a0, alloc_count()) {
        (Some(a0), Some(a1)) if tasks > 0 => Some((a1 - a0) as f64 / tasks as f64),
        _ => None,
    };

    let bid_latency = out.metrics.histogram("contest/bid_latency_secs");
    BenchRow {
        runtime: "sim-dag".to_string(),
        workers,
        jobs: tasks,
        wall_secs: wall,
        jobs_per_sec: if wall > 0.0 { tasks as f64 / wall } else { 0.0 },
        contest_p50_secs: bid_latency.map_or(0.0, |h| h.quantile(0.50)),
        contest_p99_secs: bid_latency.map_or(0.0, |h| h.quantile(0.99)),
        events: out.events,
        peak_rss_mb: peak_rss_mb(),
        allocs_per_job,
    }
}

/// Run one replicated-data-plane cell: a stream of `jobs` over a hot
/// 32-artifact working set with factor-2 replication enabled on the
/// sim engine, so the row prices the whole data plane — replica
/// bookkeeping, eviction-pin upkeep, peer-priced bids, peer transfers
/// and factor top-up repairs.
pub fn run_repl_row(workers: usize, jobs: usize, seed: u64) -> BenchRow {
    use crossbid_crossflow::{Arrival, JobSpec, Payload, ReplicationConfig, ResourceRef, RunSpec};
    use crossbid_simcore::SimTime;
    use crossbid_storage::ObjectId;

    let mut engine = EngineConfig::ideal();
    engine.max_events = (jobs as u64) * (workers as u64 * 6 + 32) + 1_000_000;
    engine.replication = ReplicationConfig::with_factor(2);
    let spec = RunSpec::builder()
        .workers(WorkerConfig::AllEqual.specs(workers))
        .names(WorkerConfig::AllEqual.name(), "repl-stream")
        .seed(seed)
        .engine(engine)
        .time_scale(1e-4)
        .build();
    let mut rt = spec.sim();
    let allocator = BiddingAllocator::new();
    let mut wf = Workflow::new();
    let task = wf.add_sink("bench");
    let arrivals: Vec<Arrival> = (0..jobs)
        .map(|i| Arrival {
            at: SimTime::from_secs_f64(i as f64 * 0.05),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(1 + (i % 32) as u64),
                    bytes: 100_000_000,
                },
                Payload::Index(i as u64),
            ),
        })
        .collect();

    let a0 = alloc_count();
    let t0 = Instant::now();
    let out = rt.run_iteration(&mut wf, &allocator, arrivals);
    let wall = t0.elapsed().as_secs_f64();
    let allocs_per_job = match (a0, alloc_count()) {
        (Some(a0), Some(a1)) if jobs > 0 => Some((a1 - a0) as f64 / jobs as f64),
        _ => None,
    };

    let bid_latency = out.metrics.histogram("contest/bid_latency_secs");
    BenchRow {
        runtime: "sim-repl".to_string(),
        workers,
        jobs,
        wall_secs: wall,
        jobs_per_sec: if wall > 0.0 { jobs as f64 / wall } else { 0.0 },
        contest_p50_secs: bid_latency.map_or(0.0, |h| h.quantile(0.50)),
        contest_p99_secs: bid_latency.map_or(0.0, |h| h.quantile(0.99)),
        events: out.events,
        peak_rss_mb: peak_rss_mb(),
        allocs_per_job,
    }
}

/// Run the whole sweep, logging progress to stderr.
pub fn run_sweep(cfg: &BenchConfig) -> BenchSweep {
    let mut rows = Vec::new();
    for &rt in &cfg.runtimes {
        let jobs = match rt {
            RuntimeChoice::Sim => cfg.sim_jobs,
            RuntimeChoice::Threaded => cfg.threaded_jobs,
        };
        for &w in &cfg.workers {
            let row = run_row(rt, w, jobs, cfg.seed);
            eprintln!(
                "[bench] {}x{w}: {} jobs in {:.2}s = {:.0} jobs/s{}",
                row.runtime,
                row.jobs,
                row.wall_secs,
                row.jobs_per_sec,
                row.allocs_per_job
                    .map(|a| format!(", {a:.1} allocs/job"))
                    .unwrap_or_default(),
            );
            rows.push(row);
        }
    }
    if cfg.fed_shards >= 2 {
        let workers = cfg.workers.iter().copied().max().unwrap_or(64);
        let row = run_fed_row(cfg.fed_shards, workers, cfg.sim_jobs, cfg.seed);
        eprintln!(
            "[bench] {}x{workers}: {} jobs in {:.2}s = {:.0} jobs/s",
            row.runtime, row.jobs, row.wall_secs, row.jobs_per_sec,
        );
        rows.push(row);
    }
    if cfg.dag_jobs > 0 {
        let workers = cfg.workers.iter().copied().max().unwrap_or(64);
        let row = run_dag_row(workers, cfg.dag_jobs, cfg.seed);
        eprintln!(
            "[bench] {}x{workers}: {} tasks in {:.2}s = {:.0} tasks/s",
            row.runtime, row.jobs, row.wall_secs, row.jobs_per_sec,
        );
        rows.push(row);
    }
    if cfg.repl_jobs > 0 {
        let workers = cfg.workers.iter().copied().max().unwrap_or(64);
        let row = run_repl_row(workers, cfg.repl_jobs, cfg.seed);
        eprintln!(
            "[bench] {}x{workers}: {} jobs in {:.2}s = {:.0} jobs/s",
            row.runtime, row.jobs, row.wall_secs, row.jobs_per_sec,
        );
        rows.push(row);
    }
    BenchSweep {
        label: cfg.label.clone(),
        rows,
    }
}

fn f64_json(x: f64) -> Json {
    Json::Num(x)
}

impl BenchRow {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("runtime", Json::str(&self.runtime)),
            ("workers", Json::UInt(self.workers as u64)),
            ("jobs", Json::UInt(self.jobs as u64)),
            ("wall_secs", f64_json(self.wall_secs)),
            ("jobs_per_sec", f64_json(self.jobs_per_sec)),
            ("contest_p50_secs", f64_json(self.contest_p50_secs)),
            ("contest_p99_secs", f64_json(self.contest_p99_secs)),
            ("events", Json::UInt(self.events)),
            ("peak_rss_mb", f64_json(self.peak_rss_mb)),
            (
                "allocs_per_job",
                match self.allocs_per_job {
                    Some(a) => f64_json(a),
                    None => Json::Null,
                },
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let runtime = v.req_str("runtime")?.to_string();
        if runtime != "sim"
            && runtime != "threaded"
            && runtime != "sim-dag"
            && runtime != "sim-repl"
            && !runtime.starts_with("sim-fed")
        {
            return Err(JsonError(format!("unknown runtime `{runtime}`")));
        }
        let allocs_per_job = match v.req("allocs_per_job")? {
            Json::Null => None,
            other => Some(
                other
                    .as_f64()
                    .ok_or_else(|| JsonError("allocs_per_job is not a number".into()))?,
            ),
        };
        Ok(BenchRow {
            runtime,
            workers: v.req_u64("workers")? as usize,
            jobs: v.req_u64("jobs")? as usize,
            wall_secs: v.req_f64("wall_secs")?,
            jobs_per_sec: v.req_f64("jobs_per_sec")?,
            contest_p50_secs: v.req_f64("contest_p50_secs")?,
            contest_p99_secs: v.req_f64("contest_p99_secs")?,
            events: v.req_u64("events")?,
            peak_rss_mb: v.req_f64("peak_rss_mb")?,
            allocs_per_job,
        })
    }
}

impl BenchSweep {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            (
                "rows",
                Json::Arr(self.rows.iter().map(BenchRow::to_json).collect()),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let rows = v
            .req("rows")?
            .as_arr()
            .ok_or_else(|| JsonError("`rows` is not an array".into()))?
            .iter()
            .map(BenchRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchSweep {
            label: v.req_str("label")?.to_string(),
            rows,
        })
    }

    /// The sim row at `workers`, if the sweep has one.
    pub fn sim_row(&self, workers: usize) -> Option<&BenchRow> {
        self.rows
            .iter()
            .find(|r| r.runtime == "sim" && r.workers == workers)
    }
}

impl BenchDoc {
    /// Assemble a document, deriving `speedup_sim_64` when both sides
    /// have a sim row at 64 workers.
    pub fn assemble(baseline: Option<BenchSweep>, current: BenchSweep) -> Self {
        let speedup = match (&baseline, current.sim_row(64)) {
            (Some(b), Some(cur)) => b
                .sim_row(64)
                .map(|base| cur.jobs_per_sec / base.jobs_per_sec),
            _ => None,
        };
        BenchDoc {
            baseline,
            current,
            speedup_sim_64: speedup,
        }
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![("schema".to_string(), Json::str(SCHEMA))];
        if let Some(b) = &self.baseline {
            fields.push(("baseline".to_string(), b.to_json()));
        }
        fields.push(("current".to_string(), self.current.to_json()));
        fields.push((
            "speedup_sim_64".to_string(),
            match self.speedup_sim_64 {
                Some(s) => Json::Num(s),
                None => Json::Null,
            },
        ));
        Json::Obj(fields)
    }

    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parse and schema-validate a document. This is what
    /// `repro bench --check FILE` and the tier-1 regression test run,
    /// so CI fails on any drift between the writer and this reader.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        let schema = v.req_str("schema")?;
        if schema != SCHEMA {
            return Err(JsonError(format!(
                "schema mismatch: got `{schema}`, expected `{SCHEMA}`"
            )));
        }
        let baseline = match v.get("baseline") {
            Some(b) => Some(BenchSweep::from_json(b)?),
            None => None,
        };
        let current = BenchSweep::from_json(v.req("current")?)?;
        if current.rows.is_empty() {
            return Err(JsonError("`current` has no rows".into()));
        }
        let speedup_sim_64 = match v.req("speedup_sim_64")? {
            Json::Null => None,
            other => Some(
                other
                    .as_f64()
                    .ok_or_else(|| JsonError("speedup_sim_64 is not a number".into()))?,
            ),
        };
        Ok(BenchDoc {
            baseline,
            current,
            speedup_sim_64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(runtime: &str, workers: usize) -> BenchRow {
        BenchRow {
            runtime: runtime.to_string(),
            workers,
            jobs: 1000,
            wall_secs: 0.5,
            jobs_per_sec: 2000.0,
            contest_p50_secs: 0.001,
            contest_p99_secs: 0.01,
            events: 12345,
            peak_rss_mb: 42.0,
            allocs_per_job: Some(17.5),
        }
    }

    #[test]
    fn document_round_trips() {
        let doc = BenchDoc::assemble(
            Some(BenchSweep {
                label: "pre".into(),
                rows: vec![BenchRow {
                    jobs_per_sec: 100.0,
                    ..row("sim", 64)
                }],
            }),
            BenchSweep {
                label: "post".into(),
                rows: vec![row("sim", 64), row("threaded", 7)],
            },
        );
        assert_eq!(doc.speedup_sim_64, Some(20.0));
        let text = doc.render();
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_rejects_schema_drift() {
        let doc = BenchDoc::assemble(
            None,
            BenchSweep {
                label: "x".into(),
                rows: vec![row("sim", 7)],
            },
        );
        let bad = doc.render().replace(SCHEMA, "crossbid-bench/v0");
        assert!(BenchDoc::parse(&bad).is_err());
        let empty = r#"{"schema":"crossbid-bench/v1","current":{"label":"x","rows":[]},"speedup_sim_64":null}"#;
        assert!(BenchDoc::parse(empty).is_err(), "empty current rejected");
        let bad_runtime = doc.render().replace("\"sim\"", "\"gpu\"");
        assert!(BenchDoc::parse(&bad_runtime).is_err());
    }

    #[test]
    fn a_tiny_federation_row_measures_and_round_trips() {
        let r = run_fed_row(2, 8, 40, 11);
        assert_eq!(r.runtime, "sim-fed2");
        assert_eq!(r.workers, 8);
        assert!(r.jobs_per_sec > 0.0);
        assert!(r.events > 0);
        let doc = BenchDoc::assemble(
            None,
            BenchSweep {
                label: "fed".into(),
                rows: vec![r],
            },
        );
        let parsed = BenchDoc::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn a_tiny_dag_row_measures_and_round_trips() {
        let r = run_dag_row(4, 5, 11);
        assert_eq!(r.runtime, "sim-dag");
        assert_eq!(r.jobs, 30, "5 DAGs x 6 tasks");
        assert!(r.jobs_per_sec > 0.0);
        assert!(r.events > 0);
        let doc = BenchDoc::assemble(
            None,
            BenchSweep {
                label: "dag".into(),
                rows: vec![r],
            },
        );
        let parsed = BenchDoc::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn a_tiny_replicated_row_measures_and_round_trips() {
        let r = run_repl_row(4, 40, 11);
        assert_eq!(r.runtime, "sim-repl");
        assert_eq!(r.jobs, 40);
        assert!(r.jobs_per_sec > 0.0);
        assert!(r.events > 0);
        let doc = BenchDoc::assemble(
            None,
            BenchSweep {
                label: "repl".into(),
                rows: vec![r],
            },
        );
        let parsed = BenchDoc::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn a_tiny_sim_row_measures_real_throughput() {
        let r = run_row(RuntimeChoice::Sim, 7, 60, 11);
        assert_eq!(r.runtime, "sim");
        assert_eq!(r.jobs, 60);
        assert!(r.jobs_per_sec > 0.0);
        assert!(r.events > 0);
        assert!(
            r.contest_p99_secs >= r.contest_p50_secs,
            "quantiles ordered: p50={} p99={}",
            r.contest_p50_secs,
            r.contest_p99_secs
        );
    }
}
