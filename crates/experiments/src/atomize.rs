//! The `repro atomize` artifact: task-level locality bidding under
//! one roof.
//!
//! Three sections, every run checked by the protocol oracle (the DAG
//! invariants — gating, per-task conservation, at-most-one effective
//! completion, speculation launched at most once — arm themselves on
//! the first `TaskOffer` in the log):
//!
//! 1. The checker's DAG axis on the simulation engine — the straggler
//!    scenario must actually speculate or the sweep proves nothing.
//! 2. The same axis on the threaded runtime.
//! 3. The headline comparison: each built-in DAG scenario run three
//!    ways on an identical cluster — **task-level** (atomized, tasks
//!    priced against their own input locality, stragglers re-bid
//!    speculatively), **whole-job** (each DAG collapsed into a single
//!    job carrying the summed work, placed by the same protocol), and
//!    **Spark-static** (the collapsed jobs under the centralized
//!    stage-synchronous baseline). On the straggler scenario the
//!    task-level run must beat the whole-job run on makespan, with at
//!    least one speculative re-bid observed.

use crossbid_baselines::SparkStaticAllocator;
use crossbid_checker::{check_log, explore_dag_builtins, DagExploreConfig, DagScenario};
use crossbid_crossflow::{
    Allocator, Arrival, EngineConfig, ProtocolMutation, RunOutput, RunSpec, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::SimDuration;

/// Parameters for `repro atomize`.
#[derive(Debug, Clone)]
pub struct AtomizeConfig {
    /// Run seeds swept per scenario (per runtime).
    pub iters: u32,
    /// Root seed; sweep and headline seeds derive from it.
    pub seed: u64,
    /// DAG arrivals per headline run (the explorer sweeps keep each
    /// scenario's built-in count). Kept above the straggler
    /// scenario's cluster size so the collapsed whole-job baseline
    /// cannot dodge the slow worker by round-robin luck.
    pub headline_dags: usize,
}

impl Default for AtomizeConfig {
    fn default() -> Self {
        AtomizeConfig {
            iters: 4,
            seed: 0xA70,
            headline_dags: 6,
        }
    }
}

impl AtomizeConfig {
    /// The reduced sweep CI runs (`repro atomize --smoke`).
    pub fn smoke() -> Self {
        AtomizeConfig {
            iters: 2,
            headline_dags: 4,
            ..Self::default()
        }
    }
}

/// Outcome of a full atomizer sweep.
#[derive(Debug, Clone)]
pub struct AtomizeReport {
    /// Rendered report (explorer axes + headline comparison).
    pub body: String,
    /// `true` iff every run passed the oracle with the demanded
    /// speculation activity and task-level beat whole-job on the
    /// straggler headline.
    pub ok: bool,
}

/// Built-in scenarios whose sweep must observe a speculative re-bid.
const MUST_SPECULATE: &[&str] = &["dag_straggler"];

/// Check one explorer sweep against the activity demands above.
fn explorer_section(body: &mut String, cfg: &DagExploreConfig) -> bool {
    let mut ok = true;
    for report in explore_dag_builtins(cfg) {
        let name = report.scenario.as_str();
        let mut demands = Vec::new();
        if MUST_SPECULATE.contains(&name) && report.speculations_observed == 0 {
            demands.push("no speculative re-bid fired across the sweep");
        }
        ok &= report.passed() && demands.is_empty();
        body.push_str(&report.render());
        for d in demands {
            body.push_str(&format!("  FAIL: {d}\n"));
        }
    }
    ok
}

/// Run a scenario's arrival stream with every DAG collapsed into one
/// whole job (`TaskDag::collapsed_spec`), on an identical cluster —
/// the allocation baseline the atomized run is compared against.
fn collapsed_run(sc: &DagScenario, seed: u64, allocator: &dyn Allocator) -> RunOutput {
    let spec = RunSpec::builder()
        .workers((0..sc.workers).map(|i| {
            let mut b = WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0);
            if let Some((slow, factor)) = sc.slow_worker {
                if slow == i {
                    b = b.cpu_factor(factor);
                }
            }
            b.build()
        }))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .trace(true)
        .names("repro", sc.name)
        .seed(seed)
        .time_scale(1e-3)
        .build();
    let mut session = spec.sim();
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arrivals: Vec<Arrival> = sc
        .arrivals(seed, task)
        .into_iter()
        .map(|a| {
            let spec = match &a.spec.dag {
                Some(dag) => dag.collapsed_spec(a.spec.task),
                None => a.spec.clone(),
            };
            Arrival { at: a.at, spec }
        })
        .collect();
    session.run_iteration(&mut wf, allocator, arrivals)
}

/// One headline comparison: task-level vs whole-job vs Spark-static
/// on the same cluster. Returns `false` on any oracle violation, lost
/// task/job, missing speculation (straggler scenarios), or if
/// task-level fails to beat whole-job where the scenario demands it.
fn headline_section(body: &mut String, sc: &DagScenario, seed: u64) -> bool {
    let atomized = sc.run_sim(seed, ProtocolMutation::None);
    let violations = check_log(&atomized.sched_log, sc.oracle_options());
    let tasks_done = atomized.sched_log.task_dones() as u64;
    let speculations = atomized.sched_log.spec_launches();

    let whole = collapsed_run(sc, seed, sc.protocol.allocator().as_ref());
    let spark = collapsed_run(sc, seed, &SparkStaticAllocator::with_stage_barrier());

    let conserved = tasks_done == sc.expected_tasks();
    let whole_done = whole.record.jobs_completed == sc.dags as u64;
    let spark_done = spark.record.jobs_completed == sc.dags as u64;
    // The straggler scenario is the acceptance bar: speculation must
    // fire and atomization must win. The skewed-reduce scenario's
    // gating pressure is covered by the oracle; its makespan rows are
    // informational.
    let demand_win = sc.slow_worker.is_some();
    let speculated = !demand_win || speculations > 0;
    let beat = !demand_win || atomized.record.makespan_secs < whole.record.makespan_secs;

    let ok = violations.is_empty() && conserved && whole_done && spark_done && speculated && beat;
    body.push_str(&format!(
        "{}: {} — {}/{} tasks done, {} speculative re-bid(s), {} violation(s)\n",
        sc.name,
        if ok { "ok" } else { "FAIL" },
        tasks_done,
        sc.expected_tasks(),
        speculations,
        violations.len(),
    ));
    body.push_str(&format!(
        "  task-level {:.1}s vs whole-job {:.1}s vs spark-static {:.1}s{}\n",
        atomized.record.makespan_secs,
        whole.record.makespan_secs,
        spark.record.makespan_secs,
        if demand_win {
            if beat {
                format!(
                    " ({:.2}x) — atomization wins",
                    whole.record.makespan_secs
                        / atomized.record.makespan_secs.max(f64::MIN_POSITIVE)
                )
            } else {
                " — FAIL: task-level did not beat whole-job".to_string()
            }
        } else {
            String::new()
        },
    ));
    for v in &violations {
        body.push_str(&format!("  oracle: {v}\n"));
    }
    if demand_win && speculations == 0 {
        body.push_str("  FAIL: no speculative re-bid in the headline run\n");
    }
    if !whole_done || !spark_done {
        body.push_str("  FAIL: a collapsed baseline lost jobs\n");
    }
    ok
}

/// Sweep the DAG axis on both runtimes, then run the headline
/// task-level vs whole-job vs Spark-static comparison.
pub fn run(cfg: &AtomizeConfig) -> AtomizeReport {
    let mut body = format!(
        "# Atomizer sweep (iters={}, seed={})\n\n",
        cfg.iters, cfg.seed
    );
    let mut ok = true;

    body.push_str("## Simulation engine — DAG shape × speculation knobs\n\n");
    ok &= explorer_section(&mut body, &DagExploreConfig::quick(cfg.iters, cfg.seed));

    body.push_str("\n## Threaded runtime — the same axis\n\n");
    let threaded_iters = cfg.iters.clamp(1, 2);
    ok &= explorer_section(
        &mut body,
        &DagExploreConfig::threaded(threaded_iters, cfg.seed),
    );

    body.push_str(&format!(
        "\n## Headline — task-level vs whole-job vs Spark-static ({} DAGs)\n\n",
        cfg.headline_dags
    ));
    for sc in DagScenario::builtins() {
        let sc = DagScenario {
            dags: cfg.headline_dags,
            ..sc
        };
        ok &= headline_section(&mut body, &sc, cfg.seed ^ 0xDA6);
    }

    body.push_str(&format!("\nresult: {}\n", if ok { "PASS" } else { "FAIL" }));
    AtomizeReport { body, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_atomize_passes() {
        let report = run(&AtomizeConfig::smoke());
        assert!(report.ok, "{}", report.body);
        assert!(report.body.contains("result: PASS"));
        assert!(report.body.contains("atomization wins"));
    }
}
