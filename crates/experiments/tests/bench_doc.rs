//! Guards the checked-in performance trajectories (`BENCH_6.json`,
//! `BENCH_9.json` and `BENCH_10.json` at the repo root): they must
//! always parse against
//! the current `crossbid-bench/v1` schema, carry the baselines they
//! claim to improve on, and keep the recorded sim speedup at 64
//! workers at or above the 10× PR 6 was accepted on. Any writer or
//! parser change that silently drifts the document shape fails here
//! (and in the CI `bench-smoke` job) instead of in the next perf
//! investigation.

use crossbid_experiments::bench::BenchDoc;

#[test]
fn checked_in_trajectory_parses_and_records_the_speedup() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    let text = std::fs::read_to_string(path).expect("BENCH_6.json at the repo root");
    let doc = BenchDoc::parse(&text).expect("checked-in document drifted from the schema");

    let base = doc.baseline.as_ref().expect("trajectory has a baseline");
    assert!(!base.rows.is_empty(), "baseline sweep has rows");

    // Both runtimes, every cluster size of the sweep.
    for w in [7, 64, 256] {
        assert!(
            doc.current.sim_row(w).is_some(),
            "current sweep is missing the sim row at {w} workers"
        );
        assert!(
            doc.current
                .rows
                .iter()
                .any(|r| r.runtime == "threaded" && r.workers == w),
            "current sweep is missing the threaded row at {w} workers"
        );
    }

    // The tentpole scale: a checked-in million-job sim row.
    assert!(
        doc.current
            .rows
            .iter()
            .any(|r| r.runtime == "sim" && r.jobs == 1_000_000),
        "trajectory must include the million-job sim row"
    );

    let speedup = doc
        .speedup_sim_64
        .expect("sim@64 speedup over the recorded baseline");
    assert!(
        speedup >= 10.0,
        "recorded sim@64 speedup fell below the acceptance floor: {speedup:.1}x"
    );
}

#[test]
fn atomizer_trajectory_carries_the_task_stream_row() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    let text = std::fs::read_to_string(path).expect("BENCH_9.json at the repo root");
    let doc = BenchDoc::parse(&text).expect("checked-in document drifted from the schema");

    // The PR 9 sweep is recorded against the PR 6 trajectory.
    let base = doc.baseline.as_ref().expect("trajectory has a baseline");
    assert!(!base.rows.is_empty(), "baseline sweep has rows");
    for w in [7, 64, 256] {
        assert!(
            doc.current.sim_row(w).is_some(),
            "current sweep is missing the sim row at {w} workers"
        );
    }

    // The atomizer row: a DAG stream priced task-by-task. Its `jobs`
    // counts tasks, the schedulable unit of an atomized run.
    let dag = doc
        .current
        .rows
        .iter()
        .find(|r| r.runtime == "sim-dag")
        .expect("trajectory must include the sim-dag row");
    assert!(dag.jobs > 0, "sim-dag row drove no tasks");
    assert!(dag.jobs_per_sec > 0.0, "sim-dag row recorded no throughput");
}

#[test]
fn replicated_trajectory_carries_the_data_plane_row() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    let text = std::fs::read_to_string(path).expect("BENCH_10.json at the repo root");
    let doc = BenchDoc::parse(&text).expect("checked-in document drifted from the schema");

    // The PR 10 sweep is recorded against the PR 9 trajectory.
    let base = doc.baseline.as_ref().expect("trajectory has a baseline");
    assert!(!base.rows.is_empty(), "baseline sweep has rows");
    for w in [7, 64, 256] {
        assert!(
            doc.current.sim_row(w).is_some(),
            "current sweep is missing the sim row at {w} workers"
        );
    }

    // The data-plane row: the streaming workload with replication
    // factor 2, so every contest prices peer fetches and the stream
    // pays for replica bookkeeping.
    let repl = doc
        .current
        .rows
        .iter()
        .find(|r| r.runtime == "sim-repl")
        .expect("trajectory must include the sim-repl row");
    assert!(repl.jobs > 0, "sim-repl row drove no jobs");
    assert!(
        repl.jobs_per_sec > 0.0,
        "sim-repl row recorded no throughput"
    );
}
