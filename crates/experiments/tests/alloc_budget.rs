//! Allocation-rate regression guard, compiled only with the
//! `bench-alloc` feature (which installs the counting global
//! allocator the measurement relies on):
//!
//! ```text
//! cargo test -p crossbid-experiments --features bench-alloc --test alloc_budget --release
//! ```
//!
//! The hot-path work behind `repro bench` took the sim engine from
//! thousands of allocations per job (a fresh roster `Vec<WorkerHandle>`
//! with cloned name `String`s on every scheduler callback, plus heap
//! churn in the event queue) down to single digits, flat across
//! cluster sizes. This pins the budget so a stray per-event or
//! per-bid allocation on the hot path fails loudly instead of
//! silently costing 10× throughput again.

#![cfg(feature = "bench-alloc")]

use crossbid_experiments::bench::run_row;
use crossbid_experiments::trace_run::RuntimeChoice;

/// Measured ≈7.5 allocs/job at 64 workers (≈4.5 at 7) when this guard
/// was written; the budget leaves headroom for noise and small
/// protocol changes while still catching any per-bid or per-event
/// allocation creeping back (one such leak costs ≥ `workers` allocs
/// per job, i.e. 64+ here).
const BUDGET_ALLOCS_PER_JOB: f64 = 48.0;

#[test]
fn sim_hot_path_allocations_stay_within_budget() {
    let row = run_row(RuntimeChoice::Sim, 64, 10_000, 0xA110C);
    assert_eq!(row.jobs, 10_000, "row must describe the run it measured");
    let apj = row
        .allocs_per_job
        .expect("bench-alloc builds always measure allocations");
    assert!(
        apj > 0.0,
        "an all-zero measurement means the counting allocator is not installed"
    );
    assert!(
        apj <= BUDGET_ALLOCS_PER_JOB,
        "sim hot path regressed to {apj:.1} allocs/job (budget {BUDGET_ALLOCS_PER_JOB}); \
         something on the per-event or per-bid path is allocating again"
    );
}
