//! Figure 4 bench: regenerates the per-worker-configuration breakdown,
//! then times one cell per (worker config, scheduler).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbid_bench::{bench_cfg, print_artifact};
use crossbid_experiments::runner::{run_cell, Cell};
use crossbid_experiments::{fig4, ExperimentConfig};
use crossbid_metrics::SchedulerKind;
use crossbid_workload::{JobConfig, WorkerConfig};

fn bench_fig4(c: &mut Criterion) {
    let (rows, _) = fig4::run(&ExperimentConfig::default());
    print_artifact("Figure 4", &fig4::render(&rows));

    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for wc in WorkerConfig::ALL {
        for sched in [SchedulerKind::Bidding, SchedulerKind::Baseline] {
            group.bench_with_input(
                BenchmarkId::new(wc.name(), sched.name()),
                &sched,
                |b, &sched| {
                    b.iter(|| {
                        run_cell(
                            &cfg,
                            Cell {
                                worker_config: wc,
                                job_config: JobConfig::Pct80Large,
                                scheduler: sched,
                            },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
