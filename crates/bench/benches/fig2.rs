//! Figure 2 bench: regenerates the Spark-vs-Crossflow table, then
//! times one column group per scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbid_bench::{bench_cfg, print_artifact};
use crossbid_experiments::runner::{run_cell, Cell};
use crossbid_experiments::{fig2, ExperimentConfig};
use crossbid_metrics::SchedulerKind;

fn bench_fig2(c: &mut Criterion) {
    // Regenerate the full artifact once at paper scale.
    let (rows, _) = fig2::run(&ExperimentConfig::default());
    print_artifact("Figure 2", &fig2::render(&rows));

    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for (label, wc, jc) in fig2::groups() {
        for sched in [SchedulerKind::Baseline, SchedulerKind::SparkStatic] {
            group.bench_with_input(
                BenchmarkId::new(label, sched.name()),
                &sched,
                |b, &sched| {
                    b.iter(|| {
                        run_cell(
                            &cfg,
                            Cell {
                                worker_config: wc,
                                job_config: jc,
                                scheduler: sched,
                            },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
