//! Tables 1–3 bench: regenerates the non-simulated MSR tables on the
//! threaded runtime, then times a smoke-scale threaded run per
//! scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbid_bench::print_artifact;
use crossbid_experiments::tables::{self, MsrExperiment};

fn bench_tables(c: &mut Criterion) {
    let res = tables::run(&MsrExperiment::default());
    print_artifact("Tables 1-3", &tables::render(&res));

    let mut group = c.benchmark_group("msr_tables");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("threaded_smoke", "bidding+baseline"),
        &(),
        |b, _| {
            b.iter(|| tables::run(&MsrExperiment::smoke()));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
