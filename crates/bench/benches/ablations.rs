//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **bid window** (§5's 1 s) — allocation quality vs decision
//!   latency;
//! * **speed learning** (§6.4 historic averages) vs static nominal
//!   speeds;
//! * **noise level** (§6.3.1's noise scheme) — robustness of bids;
//! * **cache eviction policy** — how the store interacts with each
//!   scheduler;
//! * **local short-circuit** (§7 future work) — closing contests
//!   early on an essentially-local bid.
//!
//! Each ablation prints its sweep table (stderr) and registers one
//! representative Criterion measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbid_bench::print_artifact;
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{EngineConfig, RunSpec, Workflow};
use crossbid_metrics::table::f2;
use crossbid_metrics::{RunRecord, Table};
use crossbid_net::{MarkovNoise, NoiseModel};
use crossbid_simcore::SimDuration;
use crossbid_storage::EvictionPolicy;
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

const SEED: u64 = 0xAB1A;

/// Run a 2-iteration session of `jc` on `wc` under a custom allocator
/// and engine config; returns the warm-iteration record.
fn run_once(
    wc: WorkerConfig,
    jc: JobConfig,
    alloc: &dyn crossbid_crossflow::Allocator,
    engine: EngineConfig,
    eviction: Option<EvictionPolicy>,
    storage_gb: Option<f64>,
    n_jobs: usize,
) -> RunRecord {
    let mut specs = wc.paper_specs();
    if let Some(p) = eviction {
        for s in &mut specs {
            s.eviction = p;
        }
    }
    if let Some(gb) = storage_gb {
        for s in &mut specs {
            s.storage_bytes = (gb * 1e9) as u64;
        }
    }
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let stream = jc.generate(SEED, n_jobs, task, &ArrivalProcess::evaluation_default());
    let mut session = RunSpec::builder()
        .workers(specs)
        .engine(engine)
        .names(wc.name(), jc.name())
        .seed(SEED)
        .build()
        .sim();
    let records = session.run_iterations(&mut wf, alloc, 2, |_| stream.arrivals.clone());
    records.into_iter().last().expect("two iterations")
}

fn ablation_bid_window(c: &mut Criterion) {
    let mut t = Table::new(
        "Ablation — bid window (80pct_small, all-equal, warm iteration)",
        &["window", "time (s)", "misses", "messages", "timed-out"],
    );
    let windows_ms = [50u64, 200, 1000, 3000, 10000];
    for w in windows_ms {
        let alloc = BiddingAllocator::with_window(SimDuration::from_millis(w));
        let r = run_once(
            WorkerConfig::AllEqual,
            JobConfig::Pct80Small,
            &alloc,
            EngineConfig::default(),
            None,
            None,
            60,
        );
        t.row([
            format!("{} ms", w),
            f2(r.makespan_secs),
            r.cache_misses.to_string(),
            r.control_messages.to_string(),
            r.contests_timed_out.to_string(),
        ]);
    }
    print_artifact("ablation_bid_window", &t.render());

    let mut group = c.benchmark_group("ablation_bid_window");
    group.sample_size(10);
    for w in [200u64, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            let alloc = BiddingAllocator::with_window(SimDuration::from_millis(w));
            b.iter(|| {
                run_once(
                    WorkerConfig::AllEqual,
                    JobConfig::Pct80Small,
                    &alloc,
                    EngineConfig::default(),
                    None,
                    None,
                    30,
                )
            })
        });
    }
    group.finish();
}

fn ablation_speed_learning(c: &mut Criterion) {
    let mut t = Table::new(
        "Ablation — §6.4 speed learning (one-slow, all_diff_large, warm iteration)",
        &["learning", "time (s)", "misses", "data (MB)"],
    );
    for learning in [false, true] {
        let engine = EngineConfig {
            speed_learning: learning,
            ..EngineConfig::default()
        };
        let r = run_once(
            WorkerConfig::OneSlow,
            JobConfig::AllDiffLarge,
            &BiddingAllocator::new(),
            engine,
            None,
            None,
            60,
        );
        t.row([
            learning.to_string(),
            f2(r.makespan_secs),
            r.cache_misses.to_string(),
            f2(r.data_load_mb),
        ]);
    }
    print_artifact("ablation_speed_learning", &t.render());

    let mut group = c.benchmark_group("ablation_speed_learning");
    group.sample_size(10);
    group.bench_function("learning_on", |b| {
        let engine = EngineConfig {
            speed_learning: true,
            ..EngineConfig::default()
        };
        b.iter(|| {
            run_once(
                WorkerConfig::OneSlow,
                JobConfig::AllDiffLarge,
                &BiddingAllocator::new(),
                engine.clone(),
                None,
                None,
                30,
            )
        })
    });
    group.finish();
}

fn ablation_noise(c: &mut Criterion) {
    let mut t = Table::new(
        "Ablation — noise scheme on actual speeds (all-equal, 80pct_large)",
        &["noise", "time (s)", "misses", "data (MB)"],
    );
    let noises: [(&str, NoiseModel); 4] = [
        ("none", NoiseModel::None),
        ("uniform 0.7-1.15", NoiseModel::evaluation_default()),
        ("log-normal σ=0.5", NoiseModel::LogNormal { sigma: 0.5 }),
        (
            "markov bursts",
            NoiseModel::Markov(MarkovNoise {
                p_degrade: 0.1,
                p_recover: 0.3,
                degraded_factor: 0.2,
            }),
        ),
    ];
    for (label, noise) in &noises {
        let engine = EngineConfig {
            noise: noise.clone(),
            ..EngineConfig::default()
        };
        let r = run_once(
            WorkerConfig::AllEqual,
            JobConfig::Pct80Large,
            &BiddingAllocator::new(),
            engine,
            None,
            None,
            60,
        );
        t.row([
            label.to_string(),
            f2(r.makespan_secs),
            r.cache_misses.to_string(),
            f2(r.data_load_mb),
        ]);
    }
    print_artifact("ablation_noise", &t.render());

    let mut group = c.benchmark_group("ablation_noise");
    group.sample_size(10);
    group.bench_function("lognormal", |b| {
        let engine = EngineConfig {
            noise: NoiseModel::LogNormal { sigma: 0.5 },
            ..EngineConfig::default()
        };
        b.iter(|| {
            run_once(
                WorkerConfig::AllEqual,
                JobConfig::Pct80Large,
                &BiddingAllocator::new(),
                engine.clone(),
                None,
                None,
                30,
            )
        })
    });
    group.finish();
}

fn ablation_cache_policy(c: &mut Criterion) {
    let mut t = Table::new(
        "Ablation — eviction policy (all-equal, all_diff_large, warm iteration)",
        &["policy", "time (s)", "misses", "evictions"],
    );
    for policy in EvictionPolicy::ALL {
        let r = run_once(
            WorkerConfig::AllEqual,
            JobConfig::AllDiffLarge,
            &BiddingAllocator::new(),
            EngineConfig::default(),
            Some(policy),
            Some(6.0),
            120,
        );
        t.row([
            policy.name().to_string(),
            f2(r.makespan_secs),
            r.cache_misses.to_string(),
            r.evictions.to_string(),
        ]);
    }
    print_artifact("ablation_cache_policy", &t.render());

    let mut group = c.benchmark_group("ablation_cache_policy");
    group.sample_size(10);
    group.bench_function("lru", |b| {
        b.iter(|| {
            run_once(
                WorkerConfig::AllEqual,
                JobConfig::AllDiffLarge,
                &BiddingAllocator::new(),
                EngineConfig::default(),
                Some(EvictionPolicy::Lru),
                Some(6.0),
                30,
            )
        })
    });
    group.finish();
}

fn ablation_local_shortcircuit(c: &mut Criterion) {
    let mut t = Table::new(
        "Ablation — §7 local short-circuit (all-equal, 80pct_small, warm iteration)",
        &["variant", "time (s)", "misses", "messages"],
    );
    let variants: [(&str, BiddingAllocator); 2] = [
        ("full contest", BiddingAllocator::new()),
        (
            "short-circuit ≤2s",
            BiddingAllocator::with_short_circuit(2.0),
        ),
    ];
    for (label, alloc) in &variants {
        let r = run_once(
            WorkerConfig::AllEqual,
            JobConfig::Pct80Small,
            alloc,
            EngineConfig::default(),
            None,
            None,
            60,
        );
        t.row([
            label.to_string(),
            f2(r.makespan_secs),
            r.cache_misses.to_string(),
            r.control_messages.to_string(),
        ]);
    }
    print_artifact("ablation_local_shortcircuit", &t.render());

    let mut group = c.benchmark_group("ablation_local_shortcircuit");
    group.sample_size(10);
    group.bench_function("short_circuit", |b| {
        let alloc = BiddingAllocator::with_short_circuit(2.0);
        b.iter(|| {
            run_once(
                WorkerConfig::AllEqual,
                JobConfig::Pct80Small,
                &alloc,
                EngineConfig::default(),
                None,
                None,
                30,
            )
        })
    });
    group.finish();
}

fn ablation_bid_learning(c: &mut Criterion) {
    // §7 bid learning against a secretly throttled worker: one node's
    // actual speeds are a third of its configured speeds (noise
    // override) and §6.4 speed learning is off, so only the
    // actual/estimated feedback loop can reveal it.
    let mut t = Table::new(
        "Ablation — §7 bid learning vs a secretly throttled worker (all_diff_equal)",
        &["variant", "time (s)", "misses", "throttled busy %"],
    );
    let variants: [(&str, BiddingAllocator); 2] = [
        ("plain bids", BiddingAllocator::new()),
        ("learned bids", BiddingAllocator::with_bid_learning()),
    ];
    for (label, alloc) in &variants {
        let mut specs = WorkerConfig::AllEqual.paper_specs();
        let last = specs.len() - 1;
        specs[last].noise_override = Some(NoiseModel::Uniform { lo: 0.3, hi: 0.35 });
        let mut wf = crossbid_crossflow::Workflow::new();
        let task = wf.add_sink("scan");
        let stream = JobConfig::AllDiffEqual.generate(
            SEED,
            80,
            task,
            &ArrivalProcess::Poisson {
                mean_interval_secs: 6.0,
            },
        );
        let mut session = RunSpec::builder()
            .workers(specs)
            .engine(EngineConfig::ideal())
            .names("all-equal+throttled", "all_diff_equal")
            .seed(SEED)
            .build()
            .sim();
        let r = session
            .run_iteration(&mut wf, alloc, stream.arrivals.clone())
            .record;
        t.row([
            label.to_string(),
            f2(r.makespan_secs),
            r.cache_misses.to_string(),
            format!("{:.1}%", r.worker_busy_frac[last] * 100.0),
        ]);
    }
    print_artifact("ablation_bid_learning", &t.render());

    let mut group = c.benchmark_group("ablation_bid_learning");
    group.sample_size(10);
    group.bench_function("learned", |b| {
        let alloc = BiddingAllocator::with_bid_learning();
        b.iter(|| {
            run_once(
                WorkerConfig::AllEqual,
                JobConfig::AllDiffEqual,
                &alloc,
                EngineConfig::default(),
                None,
                None,
                30,
            )
        })
    });
    group.finish();
}

fn ablation_arrival_pressure(c: &mut Criterion) {
    // The sensitivity that matters most to the calibration: how the
    // bidding advantage depends on offered load. Idle clusters hide
    // allocation quality; overloaded ones amplify it.
    let mut t = Table::new(
        "Ablation — arrival pressure (80pct_large, all-equal, warm iteration)",
        &[
            "mean interarrival",
            "bidding (s)",
            "baseline (s)",
            "speedup",
        ],
    );
    for mean in [6.0, 3.0, 1.5, 0.75] {
        let run_one = |alloc: &dyn crossbid_crossflow::Allocator| {
            let mut wf = crossbid_crossflow::Workflow::new();
            let task = wf.add_sink("scan");
            let stream = JobConfig::Pct80Large.generate(
                SEED,
                60,
                task,
                &ArrivalProcess::Poisson {
                    mean_interval_secs: mean,
                },
            );
            let mut session = RunSpec::builder()
                .workers(WorkerConfig::AllEqual.paper_specs())
                .names("all-equal", "80pct_large")
                .seed(SEED)
                .build()
                .sim();
            let records = session.run_iterations(&mut wf, alloc, 2, |_| stream.arrivals.clone());
            records.into_iter().last().expect("two iterations")
        };
        let bid = run_one(&BiddingAllocator::new());
        let base = run_one(&crossbid_crossflow::BaselineAllocator);
        t.row([
            format!("{mean:.2} s"),
            f2(bid.makespan_secs),
            f2(base.makespan_secs),
            format!("{:.2}x", base.makespan_secs / bid.makespan_secs),
        ]);
    }
    print_artifact("ablation_arrival_pressure", &t.render());

    let mut group = c.benchmark_group("ablation_arrival_pressure");
    group.sample_size(10);
    group.bench_function("overloaded", |b| {
        b.iter(|| {
            run_once(
                WorkerConfig::AllEqual,
                JobConfig::Pct80Large,
                &BiddingAllocator::new(),
                EngineConfig::default(),
                None,
                None,
                30,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_bid_window,
    ablation_speed_learning,
    ablation_noise,
    ablation_cache_policy,
    ablation_local_shortcircuit,
    ablation_bid_learning,
    ablation_arrival_pressure
);
criterion_main!(benches);
