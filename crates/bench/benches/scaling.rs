//! Scalability of the simulator and the schedulers themselves: how
//! the engine's wall-clock cost and the bidding protocol's message
//! overhead grow with cluster size and job count. This bounds the
//! experiment sizes the reproduction can handle and quantifies the
//! O(workers) message cost of broadcasting every contest (§6.3.2's
//! overhead discussion, at scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crossbid_bench::print_artifact;
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{run_workflow, Cluster, EngineConfig, RunMeta, WorkerSpec, Workflow};
use crossbid_metrics::Table;
use crossbid_workload::{ArrivalProcess, JobConfig};

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .storage_gb(30.0)
                .build()
        })
        .collect()
}

fn run(n_workers: usize, n_jobs: usize) -> (f64, u64, u64) {
    let cfg = EngineConfig::default();
    let mut cluster = Cluster::new(&specs(n_workers), &cfg);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let stream = JobConfig::AllDiffEqual.generate(
        7,
        n_jobs,
        task,
        &ArrivalProcess::Poisson {
            mean_interval_secs: 1.5 * 5.0 / n_workers as f64,
        },
    );
    let t0 = std::time::Instant::now();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        stream.arrivals,
        &cfg,
        &RunMeta::default(),
    );
    (
        t0.elapsed().as_secs_f64(),
        out.events,
        out.record.control_messages,
    )
}

fn bench_scaling(c: &mut Criterion) {
    // Artifact: wall-clock and message growth.
    let mut t = Table::new(
        "Scaling — bidding on all_diff_equal (simulator cost)",
        &[
            "workers",
            "jobs",
            "wall (ms)",
            "events",
            "ctl msgs",
            "msgs/job",
        ],
    );
    for (w, j) in [(5usize, 120usize), (10, 500), (25, 1000), (50, 2000)] {
        let (wall, events, msgs) = run(w, j);
        t.row([
            w.to_string(),
            j.to_string(),
            format!("{:.1}", wall * 1e3),
            events.to_string(),
            msgs.to_string(),
            format!("{:.1}", msgs as f64 / j as f64),
        ]);
    }
    print_artifact("scaling", &t.render());

    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for n_workers in [5usize, 20] {
        group.throughput(Throughput::Elements(200));
        group.bench_with_input(
            BenchmarkId::new("workers", n_workers),
            &n_workers,
            |b, &n| {
                b.iter(|| run(n, 200));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
