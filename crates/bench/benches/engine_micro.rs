//! Microbenchmarks of the substrates: raw event-queue throughput,
//! store operations, bid estimation, and end-to-end engine
//! events-per-second — the numbers that bound how large a cluster /
//! job count the simulator can handle.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, Arrival, Cluster, EngineConfig, JobSpec, Payload, ResourceRef, RunMeta,
    WorkerSpec, Workflow,
};
use crossbid_simcore::{EventQueue, RngStream, SimDuration, SimTime};
use crossbid_storage::{EvictionPolicy, LocalStore, ObjectId};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = RngStream::from_seed(1);
            let times: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule_at(SimTime::from_ticks(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = q.pop() {
                    acc ^= e;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_store");
    for policy in EvictionPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("churn", policy.name()),
            &policy,
            |b, &policy| {
                let mut rng = RngStream::from_seed(2);
                let ops: Vec<(u64, u64)> = (0..10_000)
                    .map(|_| (rng.below(200), 1 + rng.below(50)))
                    .collect();
                b.iter(|| {
                    let mut s = LocalStore::new(1_000, policy);
                    for (i, &(id, size)) in ops.iter().enumerate() {
                        let now = SimTime::from_ticks(i as u64);
                        if !s.lookup(ObjectId(id), now) {
                            s.insert(ObjectId(id), size, now);
                        }
                    }
                    black_box(s.stats().misses)
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for n_jobs in [100usize, 1000] {
        group.throughput(Throughput::Elements(n_jobs as u64));
        group.bench_with_input(
            BenchmarkId::new("bidding_jobs", n_jobs),
            &n_jobs,
            |b, &n_jobs| {
                let specs: Vec<WorkerSpec> = (0..5)
                    .map(|i| WorkerSpec::builder(format!("w{i}")).build())
                    .collect();
                let arrivals: Vec<Arrival> = (0..n_jobs)
                    .map(|i| Arrival {
                        at: SimTime::from_millis(i as u64 * 500),
                        spec: JobSpec::scanning(
                            crossbid_crossflow::TaskId(0),
                            ResourceRef {
                                id: ObjectId((i % 40) as u64),
                                bytes: 50_000_000,
                            },
                            Payload::Index(i as u64),
                        ),
                    })
                    .collect();
                let cfg = EngineConfig::default();
                b.iter(|| {
                    let mut cluster = Cluster::new(&specs, &cfg);
                    let mut wf = Workflow::new();
                    wf.add_sink("scan");
                    let out = run_workflow(
                        &mut cluster,
                        &mut wf,
                        &BiddingAllocator::new(),
                        arrivals.clone(),
                        &cfg,
                        &RunMeta::default(),
                    );
                    black_box(out.events)
                })
            },
        );
    }
    group.finish();
}

fn bench_transfer_model(c: &mut Criterion) {
    c.bench_function("link_transfer", |b| {
        let mut link = crossbid_net::Link::new(
            crossbid_net::Bandwidth::mb_per_sec(20.0),
            SimDuration::from_millis(300),
            crossbid_net::NoiseModel::evaluation_default(),
        );
        let mut rng = RngStream::from_seed(3);
        b.iter(|| black_box(link.transfer(500_000_000, &mut rng).duration))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_store,
    bench_engine_throughput,
    bench_transfer_model
);
criterion_main!(benches);
