//! Figure 3 bench: regenerates the three per-workload charts
//! (time / cache misses / data load) plus the headline summary, then
//! times one cell per (workload, scheduler).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbid_bench::{bench_cfg, print_artifact};
use crossbid_experiments::runner::{run_cell, Cell};
use crossbid_experiments::{fig3, summary, ExperimentConfig};
use crossbid_metrics::SchedulerKind;
use crossbid_workload::{JobConfig, WorkerConfig};

fn bench_fig3(c: &mut Criterion) {
    let (rows, records) = fig3::run(&ExperimentConfig::default());
    print_artifact("Figure 3 (a/b/c)", &fig3::render(&rows));
    print_artifact(
        "Headline summary",
        &summary::render(&summary::compute(&records)),
    );

    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for jc in JobConfig::ALL {
        for sched in [SchedulerKind::Bidding, SchedulerKind::Baseline] {
            group.bench_with_input(
                BenchmarkId::new(jc.name(), sched.name()),
                &sched,
                |b, &sched| {
                    b.iter(|| {
                        run_cell(
                            &cfg,
                            Cell {
                                worker_config: WorkerConfig::AllEqual,
                                job_config: jc,
                                scheduler: sched,
                            },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
