//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates its paper artifact once (printed to
//! stderr, so `cargo bench` output doubles as the reproduction
//! report) and then times a scaled-down version of the computation
//! with Criterion.

use crossbid_experiments::ExperimentConfig;

/// The smoke-scale configuration used inside timed loops so that a
/// bench iteration stays in the milliseconds.
pub fn bench_cfg() -> ExperimentConfig {
    ExperimentConfig {
        n_jobs: 30,
        iterations: 2,
        ..ExperimentConfig::default()
    }
}

/// Print a regenerated artifact block with a marker the bench logs can
/// be grepped for.
pub fn print_artifact(name: &str, body: &str) {
    eprintln!("\n===== reproduced artifact: {name} =====\n{body}");
}
