//! Eviction policies for [`LocalStore`](crate::store::LocalStore).
//!
//! The paper leaves cache management to the worker ("they are
//! responsible for maintaining their cache memories and local
//! resources", §7) without prescribing a policy; we implement the
//! standard family so the `ablation_cache` bench can quantify how the
//! choice interacts with each scheduler.

use serde::{Deserialize, Serialize};

/// Which resident object to evict when space is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least recently used (default: matches "keep what you just
    /// worked on", the behaviour the paper's workers rely on).
    #[default]
    Lru,
    /// Least frequently used, with recency as tie-break.
    Lfu,
    /// First in, first out (insertion order, ignores use).
    Fifo,
    /// Largest object first — frees the most space per eviction, at
    /// the cost of discarding exactly the objects that are most
    /// expensive to re-download.
    LargestFirst,
}

impl EvictionPolicy {
    /// All policies, for sweeps.
    pub const ALL: [EvictionPolicy; 4] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::Fifo,
        EvictionPolicy::LargestFirst,
    ];

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::LargestFirst => "largest-first",
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{LocalStore, ObjectId};
    use crossbid_simcore::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = EvictionPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EvictionPolicy::ALL.len());
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", EvictionPolicy::LargestFirst), "largest-first");
    }

    /// LRU evicts in strict recency order across a longer history than
    /// the two-object store tests: touch order, not insert order, is
    /// what decides.
    #[test]
    fn lru_eviction_order_follows_touches() {
        let mut s = LocalStore::new(30, EvictionPolicy::Lru);
        for i in 0..3u64 {
            s.insert(ObjectId(i), 10, t(i));
        }
        // Recency now 0 < 1 < 2; touch 0 so the order becomes 1 < 2 < 0.
        s.lookup(ObjectId(0), t(3));
        let mut gone = Vec::new();
        gone.extend(s.insert(ObjectId(10), 10, t(4)));
        gone.extend(s.insert(ObjectId(11), 10, t(5)));
        gone.extend(s.insert(ObjectId(12), 10, t(6)));
        assert_eq!(gone, vec![ObjectId(1), ObjectId(2), ObjectId(0)]);
    }

    /// Under every policy, arbitrary insert pressure never pushes the
    /// store past capacity.
    #[test]
    fn capacity_never_exceeded_under_any_policy() {
        for policy in EvictionPolicy::ALL {
            let mut s = LocalStore::new(100, policy);
            for i in 0..50u64 {
                s.insert(ObjectId(i), 1 + (i * 13) % 40, t(i));
                assert!(s.used() <= s.capacity(), "{policy:?} exceeded capacity");
            }
        }
    }

    /// Pinned (last-copy) entries are skipped by victim selection
    /// under every policy, even when the policy would otherwise pick
    /// them first.
    #[test]
    fn pinned_entries_are_never_victims() {
        for policy in EvictionPolicy::ALL {
            let mut s = LocalStore::new(100, policy);
            // Object 1 is simultaneously the least recent, least
            // frequent, first inserted, and largest — every policy's
            // preferred victim.
            s.insert(ObjectId(1), 60, t(0));
            s.insert(ObjectId(2), 20, t(1));
            s.lookup(ObjectId(2), t(2));
            assert!(s.pin(ObjectId(1)));
            let evicted = s.insert(ObjectId(3), 30, t(3));
            assert_eq!(evicted, vec![ObjectId(2)], "{policy:?} evicted a pin");
            assert!(s.peek(ObjectId(1)), "{policy:?} dropped the last copy");
        }
    }
}
