//! Eviction policies for [`LocalStore`](crate::store::LocalStore).
//!
//! The paper leaves cache management to the worker ("they are
//! responsible for maintaining their cache memories and local
//! resources", §7) without prescribing a policy; we implement the
//! standard family so the `ablation_cache` bench can quantify how the
//! choice interacts with each scheduler.

use serde::{Deserialize, Serialize};

/// Which resident object to evict when space is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least recently used (default: matches "keep what you just
    /// worked on", the behaviour the paper's workers rely on).
    #[default]
    Lru,
    /// Least frequently used, with recency as tie-break.
    Lfu,
    /// First in, first out (insertion order, ignores use).
    Fifo,
    /// Largest object first — frees the most space per eviction, at
    /// the cost of discarding exactly the objects that are most
    /// expensive to re-download.
    LargestFirst,
}

impl EvictionPolicy {
    /// All policies, for sweeps.
    pub const ALL: [EvictionPolicy; 4] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::Fifo,
        EvictionPolicy::LargestFirst,
    ];

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::LargestFirst => "largest-first",
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = EvictionPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EvictionPolicy::ALL.len());
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", EvictionPolicy::LargestFirst), "largest-first");
    }
}
