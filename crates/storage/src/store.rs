//! The capacity-bounded local store.

use std::collections::HashMap;

use crossbid_simcore::SimTime;
use serde::{Deserialize, Serialize};

use crate::eviction::EvictionPolicy;

/// Identifier of a stored object (a repository in the MSR scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Accounting the paper's §6.1 metrics are computed from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups that found the object locally.
    pub hits: u64,
    /// Lookups that did not ("the number of times workers did not
    /// have the necessary data locally", §6.1 metric 3) and were
    /// served by a master fetch — true *cold* misses.
    pub misses: u64,
    /// Lookups that missed locally but were satisfied from a peer
    /// replica instead of the master. These are locality wins of the
    /// replicated data plane, not cold misses, so they are accounted
    /// separately — `merge`/`hit_ratio` must not lump them into
    /// `misses` or cluster-level miss counts inflate as soon as
    /// replication is enabled.
    pub peer_fetches: u64,
    /// Objects evicted to make room.
    pub evictions: u64,
    /// Total bytes admitted into the store — for objects fetched over
    /// the network this equals the paper's **data load** contribution.
    pub bytes_admitted: u64,
    /// Total bytes evicted.
    pub bytes_evicted: u64,
}

impl StoreStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened. Peer-fetch
    /// hits count toward the numerator: the data stayed inside the
    /// cluster, which is what the locality metric measures. Only cold
    /// (master-served) misses count against it.
    pub fn hit_ratio(&self) -> f64 {
        let local = self.hits + self.peer_fetches;
        let total = local + self.misses;
        if total == 0 {
            0.0
        } else {
            local as f64 / total as f64
        }
    }

    /// Merge another worker's stats into this one (cluster totals).
    pub fn merge(&mut self, other: &StoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.peer_fetches += other.peer_fetches;
        self.evictions += other.evictions;
        self.bytes_admitted += other.bytes_admitted;
        self.bytes_evicted += other.bytes_evicted;
    }
}

#[derive(Debug, Clone)]
struct Entry {
    size: u64,
    last_used: SimTime,
    /// Monotonic recency counter (ties in `last_used` are possible
    /// when several touches happen at the same virtual instant).
    last_seq: u64,
    inserted_seq: u64,
    uses: u64,
    /// Pinned entries are never picked as eviction victims. The
    /// replica manager pins an object on the node holding its last
    /// surviving copy, so local cache pressure can never destroy data
    /// the cluster cannot re-create.
    pinned: bool,
}

/// A worker's local resource store.
///
/// Objects have sizes; the store holds at most `capacity` bytes and
/// evicts according to its [`EvictionPolicy`] when an insertion would
/// overflow. An object larger than the whole capacity is *passed
/// through*: it is downloaded (counted in `bytes_admitted`) but not
/// retained — mirroring a worker whose disk simply cannot keep the
/// clone.
#[derive(Debug, Clone)]
pub struct LocalStore {
    capacity: u64,
    used: u64,
    /// Bytes held by pinned entries — kept incrementally so insert's
    /// "can this ever fit" check stays O(1).
    pinned_bytes: u64,
    policy: EvictionPolicy,
    entries: HashMap<ObjectId, Entry>,
    seq: u64,
    stats: StoreStats,
}

impl LocalStore {
    /// Create an empty store.
    pub fn new(capacity: u64, policy: EvictionPolicy) -> Self {
        LocalStore {
            capacity,
            used: 0,
            pinned_bytes: 0,
            policy,
            entries: HashMap::new(),
            seq: 0,
            stats: StoreStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no objects are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The eviction policy in force.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Reset statistics (e.g. between measured iterations) without
    /// touching the resident set — the paper's multi-iteration runs
    /// keep caches warm across iterations.
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    /// Non-mutating membership check used when *estimating* bids —
    /// checking "the contents of local cache memory" must not perturb
    /// recency or hit/miss accounting.
    pub fn peek(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Size of a resident object, if present.
    pub fn size_of(&self, id: ObjectId) -> Option<u64> {
        self.entries.get(&id).map(|e| e.size)
    }

    /// Look up `id` for actual use at time `now`. A hit refreshes
    /// recency/frequency and is counted; a miss is counted and the
    /// caller is expected to fetch and then [`insert`](Self::insert).
    pub fn lookup(&mut self, id: ObjectId, now: SimTime) -> bool {
        self.seq += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.last_used = now;
            e.last_seq = self.seq;
            e.uses += 1;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Admit `id` with `size` bytes at time `now`, evicting as needed.
    /// Returns the evicted object ids (possibly empty). Re-inserting a
    /// resident object only refreshes its metadata.
    pub fn insert(&mut self, id: ObjectId, size: u64, now: SimTime) -> Vec<ObjectId> {
        self.seq += 1;
        self.stats.bytes_admitted += size;
        if let Some(e) = self.entries.get_mut(&id) {
            // Refresh; size is immutable per object in our model.
            debug_assert_eq!(e.size, size, "object size changed");
            e.last_used = now;
            e.last_seq = self.seq;
            e.uses += 1;
            return Vec::new();
        }
        if size > self.capacity.saturating_sub(self.pinned_bytes) {
            // Pass-through: downloaded but cannot be retained, either
            // because the object exceeds the whole capacity or because
            // pinned last-copy entries leave too little evictable
            // room. Evicting nothing (rather than partially) keeps the
            // resident set intact when admission is impossible.
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let victim = self
                .pick_victim()
                .expect("unpinned bytes cover the shortfall");
            let e = self.entries.remove(&victim).expect("victim resident");
            self.used -= e.size;
            self.stats.evictions += 1;
            self.stats.bytes_evicted += e.size;
            evicted.push(victim);
        }
        self.used += size;
        self.entries.insert(
            id,
            Entry {
                size,
                last_used: now,
                last_seq: self.seq,
                inserted_seq: self.seq,
                uses: 1,
                pinned: false,
            },
        );
        evicted
    }

    /// Remove an object explicitly (fault injection / manual cache
    /// management). Returns true if it was resident. Removal ignores
    /// pins — a crash destroys pinned copies too.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        if let Some(e) = self.entries.remove(&id) {
            self.used -= e.size;
            if e.pinned {
                self.pinned_bytes -= e.size;
            }
            true
        } else {
            false
        }
    }

    /// Drop everything (cold restart of a worker).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
        self.pinned_bytes = 0;
    }

    /// Pin a resident object: it will never be picked as an eviction
    /// victim until [`unpin`](Self::unpin)ned. Returns true if the
    /// object is resident (and is now pinned).
    pub fn pin(&mut self, id: ObjectId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                if !e.pinned {
                    e.pinned = true;
                    self.pinned_bytes += e.size;
                }
                true
            }
            None => false,
        }
    }

    /// Release a pin. Returns true if the object was resident and
    /// pinned.
    pub fn unpin(&mut self, id: ObjectId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) if e.pinned => {
                e.pinned = false;
                self.pinned_bytes -= e.size;
                true
            }
            _ => false,
        }
    }

    /// True iff `id` is resident and pinned.
    pub fn is_pinned(&self, id: ObjectId) -> bool {
        self.entries.get(&id).is_some_and(|e| e.pinned)
    }

    /// Reclassify the most recent miss as a peer fetch: the lookup
    /// did miss locally, but a peer replica (not the master) served
    /// the bytes. Call after a [`lookup`](Self::lookup) miss once the
    /// peer transfer succeeds.
    pub fn note_peer_fetch(&mut self) {
        self.stats.misses = self.stats.misses.saturating_sub(1);
        self.stats.peer_fetches += 1;
    }

    /// Resident object ids in unspecified order.
    pub fn resident(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.entries.keys().copied()
    }

    fn pick_victim(&self) -> Option<ObjectId> {
        // Deterministic: ties broken by (key metric, ObjectId).
        // Pinned entries (last surviving copies) are never candidates.
        let candidates = self.entries.iter().filter(|(_, e)| !e.pinned);
        match self.policy {
            EvictionPolicy::Lru => candidates
                .min_by_key(|(id, e)| (e.last_seq, **id))
                .map(|(id, _)| *id),
            EvictionPolicy::Lfu => candidates
                .min_by_key(|(id, e)| (e.uses, e.last_seq, **id))
                .map(|(id, _)| *id),
            EvictionPolicy::Fifo => candidates
                .min_by_key(|(id, e)| (e.inserted_seq, **id))
                .map(|(id, _)| *id),
            EvictionPolicy::LargestFirst => candidates
                .max_by_key(|(id, e)| (e.size, std::cmp::Reverse(**id)))
                .map(|(id, _)| *id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        assert!(!s.lookup(ObjectId(1), t(0)));
        s.insert(ObjectId(1), 40, t(0));
        assert!(s.lookup(ObjectId(1), t(1)));
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().bytes_admitted, 40);
        assert!((s.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_count() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 10, t(0));
        assert!(s.peek(ObjectId(1)));
        assert!(!s.peek(ObjectId(2)));
        assert_eq!(s.stats().hits, 0);
        assert_eq!(s.stats().misses, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 40, t(0));
        s.insert(ObjectId(2), 40, t(1));
        s.lookup(ObjectId(1), t(2)); // 1 now more recent than 2
        let evicted = s.insert(ObjectId(3), 40, t(3));
        assert_eq!(evicted, vec![ObjectId(2)]);
        assert!(s.peek(ObjectId(1)) && s.peek(ObjectId(3)));
    }

    #[test]
    fn lfu_evicts_least_frequently_used() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lfu);
        s.insert(ObjectId(1), 40, t(0));
        s.insert(ObjectId(2), 40, t(1));
        for i in 0..5 {
            s.lookup(ObjectId(2), t(2 + i));
        }
        let evicted = s.insert(ObjectId(3), 40, t(10));
        assert_eq!(evicted, vec![ObjectId(1)]);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut s = LocalStore::new(100, EvictionPolicy::Fifo);
        s.insert(ObjectId(1), 40, t(0));
        s.insert(ObjectId(2), 40, t(1));
        s.lookup(ObjectId(1), t(2)); // would save 1 under LRU
        let evicted = s.insert(ObjectId(3), 40, t(3));
        assert_eq!(evicted, vec![ObjectId(1)]);
    }

    #[test]
    fn largest_first_frees_most_space() {
        let mut s = LocalStore::new(100, EvictionPolicy::LargestFirst);
        s.insert(ObjectId(1), 60, t(0));
        s.insert(ObjectId(2), 30, t(1));
        let evicted = s.insert(ObjectId(3), 50, t(2));
        assert_eq!(evicted, vec![ObjectId(1)]);
        assert_eq!(s.used(), 80);
    }

    #[test]
    fn multiple_evictions_for_one_insert() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 30, t(0));
        s.insert(ObjectId(2), 30, t(1));
        s.insert(ObjectId(3), 30, t(2));
        let evicted = s.insert(ObjectId(4), 90, t(3));
        assert_eq!(evicted.len(), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.used(), 90);
        assert_eq!(s.stats().evictions, 3);
        assert_eq!(s.stats().bytes_evicted, 90);
    }

    #[test]
    fn oversized_object_passes_through() {
        let mut s = LocalStore::new(50, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 30, t(0));
        let evicted = s.insert(ObjectId(2), 500, t(1));
        assert!(evicted.is_empty());
        assert!(!s.peek(ObjectId(2)));
        assert!(s.peek(ObjectId(1)), "resident set untouched");
        // Download still counted as data load.
        assert_eq!(s.stats().bytes_admitted, 530);
    }

    #[test]
    fn reinsert_refreshes_without_duplication() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 40, t(0));
        s.insert(ObjectId(1), 40, t(5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.used(), 40);
    }

    #[test]
    fn remove_and_clear() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 40, t(0));
        s.insert(ObjectId(2), 40, t(0));
        assert!(s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(1)));
        assert_eq!(s.used(), 40);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.used(), 0);
    }

    #[test]
    fn reset_stats_keeps_residents() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 40, t(0));
        s.lookup(ObjectId(1), t(1));
        s.reset_stats();
        assert_eq!(s.stats(), &StoreStats::default());
        assert!(s.peek(ObjectId(1)), "warm cache survives stat reset");
    }

    #[test]
    fn stats_merge() {
        let mut a = StoreStats {
            hits: 1,
            misses: 2,
            peer_fetches: 6,
            evictions: 3,
            bytes_admitted: 4,
            bytes_evicted: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hits, 2);
        assert_eq!(a.peer_fetches, 12, "peer fetches merge separately");
        assert_eq!(a.bytes_evicted, 10);
    }

    #[test]
    fn peer_fetch_is_not_a_cold_miss() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        assert!(!s.lookup(ObjectId(1), t(0))); // miss, then peer serves it
        s.note_peer_fetch();
        s.insert(ObjectId(1), 40, t(0));
        assert!(s.lookup(ObjectId(1), t(1))); // warm hit
        assert_eq!(s.stats().misses, 0, "peer fetch reclassified the miss");
        assert_eq!(s.stats().peer_fetches, 1);
        // Both the hit and the peer fetch count as locality wins.
        assert!((s.stats().hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pinned_entry_survives_eviction_pressure() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 40, t(0));
        s.insert(ObjectId(2), 40, t(1));
        assert!(s.pin(ObjectId(1)));
        // Object 1 is the LRU victim, but it is pinned: 2 goes instead.
        let evicted = s.insert(ObjectId(3), 40, t(2));
        assert_eq!(evicted, vec![ObjectId(2)]);
        assert!(s.peek(ObjectId(1)), "pinned last copy survives");
        assert!(s.is_pinned(ObjectId(1)));
    }

    #[test]
    fn insert_passes_through_when_pins_block_admission() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 80, t(0));
        assert!(s.pin(ObjectId(1)));
        let evicted = s.insert(ObjectId(2), 50, t(1));
        assert!(evicted.is_empty(), "nothing evicted when admission fails");
        assert!(!s.peek(ObjectId(2)), "pass-through: not retained");
        assert!(s.peek(ObjectId(1)), "pinned copy untouched");
        // Unpinning restores normal admission.
        assert!(s.unpin(ObjectId(1)));
        let evicted = s.insert(ObjectId(2), 50, t(2));
        assert_eq!(evicted, vec![ObjectId(1)]);
        assert!(s.peek(ObjectId(2)));
    }

    #[test]
    fn remove_and_clear_release_pins() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        s.insert(ObjectId(1), 60, t(0));
        s.pin(ObjectId(1));
        assert!(s.remove(ObjectId(1)), "crash removal ignores the pin");
        // Pinned-byte accounting released: a 90-byte object fits again.
        let evicted = s.insert(ObjectId(2), 90, t(1));
        assert!(evicted.is_empty());
        assert!(s.peek(ObjectId(2)));
        s.pin(ObjectId(2));
        s.clear();
        assert!(s.insert(ObjectId(3), 100, t(2)).is_empty());
        assert!(s.peek(ObjectId(3)), "clear released pinned bytes");
    }

    #[test]
    fn same_instant_lru_ties_break_by_sequence() {
        let mut s = LocalStore::new(100, EvictionPolicy::Lru);
        // All inserted at the same virtual instant.
        s.insert(ObjectId(1), 40, t(0));
        s.insert(ObjectId(2), 40, t(0));
        let evicted = s.insert(ObjectId(3), 40, t(0));
        assert_eq!(evicted, vec![ObjectId(1)], "earliest-touched evicted");
    }
}

/// Named promotions of the seeds in `proptest-regressions/store.txt`:
/// the minimal inputs proptest shrank to, replayed deterministically
/// so the historical failures stay covered even when a proptest run
/// only generates fresh cases.
#[cfg(test)]
mod regression_seeds {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// `cc d27ae44d…` shrank to `ops = [(19, 1), (19, 2)]`: the same
    /// object looked up and re-inserted back to back. Per-object sizes
    /// are stable in our model (the property test pins the second op's
    /// size to the first), so the re-insert must only refresh metadata
    /// — `used` stays at one copy, the resident-size sum matches, and
    /// the second lookup is a hit. Replayed under every policy.
    #[test]
    fn immediate_reinsert_does_not_double_count() {
        for policy in EvictionPolicy::ALL {
            let mut s = LocalStore::new(100, policy);
            for (i, (id, size)) in [(19u64, 1u64), (19, 1)].iter().enumerate() {
                s.lookup(ObjectId(*id), t(i as u64));
                s.insert(ObjectId(*id), *size, t(i as u64));
                assert!(s.used() <= s.capacity(), "{policy:?}");
                let sum: u64 = s.resident().map(|o| s.size_of(o).unwrap()).sum();
                assert_eq!(sum, s.used(), "{policy:?}: sum of sizes == used");
                assert!(s.peek(ObjectId(*id)), "{policy:?}: fresh object resident");
            }
            assert_eq!(s.used(), 1, "{policy:?}: one copy, not two");
            assert_eq!(s.len(), 1, "{policy:?}");
            assert_eq!(s.stats().hits, 1, "{policy:?}: second lookup hits");
            assert_eq!(s.stats().misses, 1, "{policy:?}: first lookup misses");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Capacity is never exceeded and `used` always equals the sum
        /// of resident sizes, for arbitrary operation sequences under
        /// every policy.
        #[test]
        fn capacity_invariant(
            policy_idx in 0usize..4,
            capacity in 1u64..500,
            ops in proptest::collection::vec((0u64..30, 1u64..200), 1..200)
        ) {
            let policy = EvictionPolicy::ALL[policy_idx];
            let mut s = LocalStore::new(capacity, policy);
            let mut sizes: std::collections::HashMap<ObjectId, u64> = Default::default();
            for (i, (id, size)) in ops.iter().enumerate() {
                // Per-object stable size (the model's assumption).
                let id = ObjectId(*id);
                let size = *sizes.entry(id).or_insert(*size);
                s.lookup(id, SimTime::from_secs(i as u64));
                s.insert(id, size, SimTime::from_secs(i as u64));
                prop_assert!(s.used() <= s.capacity());
                let sum: u64 = s.resident().map(|o| s.size_of(o).unwrap()).sum();
                prop_assert_eq!(sum, s.used());
            }
        }

        /// Lookups + inserts keep hit+miss == lookups, and an object
        /// just inserted (and small enough) is always resident.
        #[test]
        fn accounting_invariant(ops in proptest::collection::vec((0u64..20, 1u64..50), 1..100)) {
            let mut s = LocalStore::new(100, EvictionPolicy::Lru);
            let mut sizes: std::collections::HashMap<ObjectId, u64> = Default::default();
            let mut lookups = 0;
            for (i, (id, size)) in ops.iter().enumerate() {
                let id = ObjectId(*id);
                let size = *sizes.entry(id).or_insert(*size);
                let now = SimTime::from_secs(i as u64);
                s.lookup(id, now);
                lookups += 1;
                s.insert(id, size, now);
                prop_assert!(s.peek(id), "freshly inserted object resident");
            }
            prop_assert_eq!(s.stats().hits + s.stats().misses, lookups);
        }
    }
}
