//! # crossbid-storage
//!
//! Worker-local resource storage.
//!
//! In the paper's MSR scenario each worker keeps cloned GitHub
//! repositories on its local filesystem so that "repeated computations
//! involving the same files" can be "allocated to the same worker
//! nodes, namely the ones that already possess them" (§2). Whether a
//! worker holds a repository locally is exactly the locality signal
//! both schedulers consume, and the paper's evaluation metrics
//! **cache miss** and **data load** (§6.1) are computed from this
//! store's accounting.
//!
//! * [`LocalStore`] — capacity-bounded store of sized objects, with
//!   pin support so the last surviving replica of an artifact is never
//!   an eviction victim.
//! * [`EvictionPolicy`] — LRU / LFU / FIFO / size-aware policies.
//! * [`StoreStats`] — hits, misses, peer fetches, evictions, bytes
//!   admitted/evicted.
//! * [`ReplicaMap`] — cluster-wide artifact → replica-set registry
//!   with a target replication factor (the self-healing data plane's
//!   source of truth).

//! ```
//! use crossbid_simcore::SimTime;
//! use crossbid_storage::{EvictionPolicy, LocalStore, ObjectId};
//!
//! let mut store = LocalStore::new(100, EvictionPolicy::Lru);
//! assert!(!store.lookup(ObjectId(1), SimTime::ZERO));   // miss
//! store.insert(ObjectId(1), 80, SimTime::ZERO);         // clone kept
//! assert!(store.lookup(ObjectId(1), SimTime::from_secs(1))); // hit
//! let evicted = store.insert(ObjectId(2), 40, SimTime::from_secs(2));
//! assert_eq!(evicted, vec![ObjectId(1)]);               // LRU eviction
//! assert_eq!(store.stats().misses, 1);
//! assert_eq!(store.stats().bytes_admitted, 120);
//! ```

pub mod eviction;
pub mod replica;
pub mod store;

pub use eviction::EvictionPolicy;
pub use replica::ReplicaMap;
pub use store::{LocalStore, ObjectId, StoreStats};
