//! Cluster-wide replica registry for the self-healing data plane.
//!
//! The paper's workers each hold a private cache; nothing in the
//! original model survives a worker crash — every artifact the dead
//! node held must be re-fetched from the master. [`ReplicaMap`] is the
//! master-side registry that turns those private caches into a
//! *replicated* data plane: it records, per artifact, the set of nodes
//! currently holding a live copy, plus the target `replication_factor`
//! the control plane tries to maintain. The scheduler consults it to
//! price peer-to-peer fetches into bids, and the repair path diffs a
//! dead worker's resident set against it to find artifacts that fell
//! below target.
//!
//! Node ids are plain `u32` here (the storage crate sits below the
//! runtime crates and does not know about `WorkerId`).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::store::ObjectId;

/// Artifact → replica-holder registry with a target replication factor.
///
/// Deterministic by construction: replica sets are ordered
/// (`BTreeSet`), so iteration order — and therefore source/destination
/// selection in the repair path — is stable across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaMap {
    factor: u32,
    replicas: BTreeMap<ObjectId, BTreeSet<u32>>,
    sizes: BTreeMap<ObjectId, u64>,
}

impl ReplicaMap {
    /// Create an empty map with the given target replication factor
    /// (clamped to at least 1).
    pub fn new(factor: u32) -> Self {
        ReplicaMap {
            factor: factor.max(1),
            replicas: BTreeMap::new(),
            sizes: BTreeMap::new(),
        }
    }

    /// The target number of live copies per artifact.
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Record that `node` now holds a live copy of `id` (`bytes`
    /// large). Returns true if this is a new replica.
    pub fn add(&mut self, id: ObjectId, node: u32, bytes: u64) -> bool {
        self.sizes.entry(id).or_insert(bytes);
        self.replicas.entry(id).or_default().insert(node)
    }

    /// Record that `node` no longer holds `id` (eviction or crash).
    /// Returns true if the replica was registered. The artifact stays
    /// known (with an empty set) so loss of the last copy remains
    /// observable.
    pub fn drop_replica(&mut self, id: ObjectId, node: u32) -> bool {
        self.replicas
            .get_mut(&id)
            .map(|s| s.remove(&node))
            .unwrap_or(false)
    }

    /// Remove `node` from every replica set, returning the artifacts
    /// it held (sorted). This is the crash/remove diff: the returned
    /// list is exactly the set of artifacts whose replica count just
    /// dropped.
    pub fn drop_node(&mut self, node: u32) -> Vec<ObjectId> {
        let mut affected = Vec::new();
        for (id, set) in self.replicas.iter_mut() {
            if set.remove(&node) {
                affected.push(*id);
            }
        }
        affected
    }

    /// Live replica holders of `id`, in ascending node order.
    pub fn replicas(&self, id: ObjectId) -> impl Iterator<Item = u32> + '_ {
        self.replicas.get(&id).into_iter().flatten().copied()
    }

    /// Number of live copies of `id`.
    pub fn count(&self, id: ObjectId) -> usize {
        self.replicas.get(&id).map_or(0, |s| s.len())
    }

    /// True iff `node` holds a live copy of `id`.
    pub fn holds(&self, id: ObjectId, node: u32) -> bool {
        self.replicas.get(&id).is_some_and(|s| s.contains(&node))
    }

    /// Size in bytes of `id`, if the artifact has ever been registered.
    pub fn bytes(&self, id: ObjectId) -> Option<u64> {
        self.sizes.get(&id).copied()
    }

    /// The sole holder of `id`, if exactly one live copy remains.
    pub fn sole_holder(&self, id: ObjectId) -> Option<u32> {
        let set = self.replicas.get(&id)?;
        if set.len() == 1 {
            set.iter().next().copied()
        } else {
            None
        }
    }

    /// True iff `node` holds the last surviving copy of `id`.
    pub fn is_sole_copy(&self, id: ObjectId, node: u32) -> bool {
        self.sole_holder(id) == Some(node)
    }

    /// Artifacts `node` currently holds, sorted by id.
    pub fn on_node(&self, node: u32) -> Vec<ObjectId> {
        self.replicas
            .iter()
            .filter(|(_, s)| s.contains(&node))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Artifacts with at least one live copy but fewer than the target
    /// factor — the repair work list, sorted by id.
    pub fn under_replicated(&self) -> Vec<ObjectId> {
        self.replicas
            .iter()
            .filter(|(_, s)| !s.is_empty() && s.len() < self.factor as usize)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Every artifact ever registered, sorted by id (live or lost).
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.replicas.keys().copied()
    }

    /// Number of artifacts ever registered.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True iff no artifact was ever registered.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_drop_round_trip() {
        let mut m = ReplicaMap::new(2);
        assert!(m.add(ObjectId(1), 0, 100));
        assert!(!m.add(ObjectId(1), 0, 100), "re-add is idempotent");
        assert!(m.add(ObjectId(1), 3, 100));
        assert_eq!(m.count(ObjectId(1)), 2);
        assert_eq!(m.bytes(ObjectId(1)), Some(100));
        assert!(m.holds(ObjectId(1), 3));
        assert!(m.drop_replica(ObjectId(1), 0));
        assert!(!m.drop_replica(ObjectId(1), 0), "double drop is a no-op");
        assert_eq!(m.sole_holder(ObjectId(1)), Some(3));
        assert!(m.is_sole_copy(ObjectId(1), 3));
    }

    #[test]
    fn drop_node_returns_the_resident_diff() {
        let mut m = ReplicaMap::new(2);
        m.add(ObjectId(1), 0, 10);
        m.add(ObjectId(2), 0, 20);
        m.add(ObjectId(2), 1, 20);
        m.add(ObjectId(3), 1, 30);
        let affected = m.drop_node(0);
        assert_eq!(affected, vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(m.count(ObjectId(1)), 0, "last copy lost");
        assert_eq!(m.sole_holder(ObjectId(2)), Some(1));
    }

    #[test]
    fn under_replicated_lists_live_but_below_target() {
        let mut m = ReplicaMap::new(2);
        m.add(ObjectId(1), 0, 10); // 1 copy < 2: under-replicated
        m.add(ObjectId(2), 0, 20);
        m.add(ObjectId(2), 1, 20); // at target
        m.add(ObjectId(3), 2, 30);
        m.drop_replica(ObjectId(3), 2); // 0 copies: lost, not repairable
        assert_eq!(m.under_replicated(), vec![ObjectId(1)]);
    }

    #[test]
    fn replicas_iterate_in_node_order() {
        let mut m = ReplicaMap::new(3);
        m.add(ObjectId(7), 5, 1);
        m.add(ObjectId(7), 1, 1);
        m.add(ObjectId(7), 3, 1);
        let nodes: Vec<u32> = m.replicas(ObjectId(7)).collect();
        assert_eq!(nodes, vec![1, 3, 5]);
        assert_eq!(m.on_node(3), vec![ObjectId(7)]);
    }

    #[test]
    fn factor_is_clamped_to_one() {
        assert_eq!(ReplicaMap::new(0).factor(), 1);
    }
}
