//! The protocol invariant oracle: a pure state machine over the
//! control-plane event log ([`SchedLog`]) asserting the conservation
//! invariants the bidding protocol (paper §5, Listings 1–2) and the
//! Baseline (§6.2) must uphold under *any* interleaving:
//!
//! 1. **Conservation** — every submitted job completes exactly once
//!    (or, when the caller says a partial run is legitimate, at most
//!    once); nothing completes that was never submitted.
//! 2. **No assignment without a winning bid** — a contested job is
//!    assigned only after its contest closed, to a worker that bid in
//!    it (unless the close was an explicit no-bid fallback draft).
//! 3. **No bid after close** — bids are recorded only into open
//!    contests, at most one per worker per contest, and never with a
//!    non-finite estimate.
//! 4. **Redistribution only from the dead** — a job is redistributed
//!    from a worker only if that worker's incarnation died holding it:
//!    the worker crashed *after* the placement, or the placement
//!    landed inside the worker's dead-but-undetected masking window.
//! 5. **Queues never go negative** — per worker, rejections and
//!    completions never outnumber placements.
//! 6. **Leases bound silence, not confirmed work** — under the
//!    lossy-link reliability layer, a placement lease may expire only
//!    while the placement is unacknowledged and the job incomplete;
//!    expiring an acked or completed placement means the master
//!    discarded state the protocol had already confirmed.
//!
//! The oracle is runtime-agnostic: both the discrete-event engine and
//! the threaded runtime emit the same vocabulary (pinned by
//! `tests/golden/event_vocabulary.txt`), and the same `SchedLog` can be
//! reconstructed from an exported JSONL stream.

use std::collections::{HashMap, HashSet};

use crossbid_crossflow::{JobId, SchedEvent, SchedEventKind, SchedLog, ShardId, WorkerId};

/// One invariant violation, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A job was submitted twice (id reuse).
    DuplicateSubmit {
        /// Offending job.
        job: JobId,
    },
    /// A bid carried a NaN or infinite estimate.
    NonFiniteBid {
        /// Offending job.
        job: JobId,
        /// Bidding worker.
        worker: WorkerId,
    },
    /// A bid was recorded outside any open contest for the job.
    BidAfterClose {
        /// Offending job.
        job: JobId,
        /// Bidding worker.
        worker: WorkerId,
    },
    /// A second bid from the same worker was recorded into one
    /// contest.
    DuplicateBid {
        /// Offending job.
        job: JobId,
        /// Bidding worker.
        worker: WorkerId,
    },
    /// A contested job was assigned without a contest close, after a
    /// close with no bids (and no fallback flag), or to a worker that
    /// never bid in the closing contest.
    AssignmentWithoutBid {
        /// Offending job.
        job: JobId,
        /// Assignee.
        worker: WorkerId,
    },
    /// A job was placed (assigned/offered) while the log still shows
    /// it placed elsewhere — a double assignment.
    AssignedWhilePlaced {
        /// Offending job.
        job: JobId,
        /// New assignee.
        worker: WorkerId,
        /// Where the log believes the job already sits.
        previous: WorkerId,
    },
    /// A worker rejected a job it was never offered.
    RejectWithoutOffer {
        /// Offending job.
        job: JobId,
        /// Rejecting worker.
        worker: WorkerId,
    },
    /// Baseline strict mode: a job bounced straight back to the worker
    /// that just rejected it.
    ReofferToRejector {
        /// Offending job.
        job: JobId,
        /// The rejector it bounced back to.
        worker: WorkerId,
    },
    /// A completion was logged for a job never submitted.
    CompletedUnknownJob {
        /// Offending job.
        job: JobId,
    },
    /// A second completion was logged for one job.
    CompletedTwice {
        /// Offending job.
        job: JobId,
        /// Worker reporting the duplicate.
        worker: WorkerId,
    },
    /// A completion came from a worker the job was never placed on.
    CompletedWithoutPlacement {
        /// Offending job.
        job: JobId,
        /// Completing worker.
        worker: WorkerId,
    },
    /// A job was redistributed from a worker that neither crashed
    /// while holding it nor received it during its dead (undetected)
    /// window.
    RedistributionWithLiveOwner {
        /// Offending job.
        job: JobId,
        /// The owner it was reclaimed from.
        worker: WorkerId,
    },
    /// A job was redistributed after it already completed.
    RedistributedAfterCompletion {
        /// Offending job.
        job: JobId,
    },
    /// A placement lease expired even though the worker had already
    /// acknowledged the placement — the master ignored (or lost track
    /// of) an ack it logged, so the retransmission/lease timers kept
    /// running on a confirmed placement.
    LeaseExpiredAfterAck {
        /// Offending job.
        job: JobId,
        /// The worker whose acked placement was bounced.
        worker: WorkerId,
    },
    /// A placement lease expired for a job that had already completed:
    /// the master bounced work whose effects were final.
    LeaseExpiredAfterCompletion {
        /// Offending job.
        job: JobId,
    },
    /// A worker's placement ledger went negative: more rejections +
    /// completions than placements.
    NegativeQueue {
        /// Offending worker.
        worker: WorkerId,
        /// The depth it reached.
        depth: i64,
    },
    /// End of log: a submitted job neither completed nor is the run an
    /// acknowledged partial run.
    JobLost {
        /// The lost job.
        job: JobId,
    },
    /// Federated log: a job was handed off (`SpillOut`) but no shard
    /// ever recorded the matching `SpillIn` — the hand-off lost the
    /// job.
    SpillOutWithoutSpillIn {
        /// The handed-off job.
        job: JobId,
        /// Where the home shard claims it sent the job.
        to_shard: ShardId,
    },
    /// Federated log: a shard recorded receiving a spilled job
    /// (`SpillIn`) that no home shard ever handed off.
    SpillInWithoutSpillOut {
        /// The phantom job.
        job: JobId,
        /// The shard it claims to come from.
        from_shard: ShardId,
    },
    /// A job was handed off twice: the forwarder spilled a job it had
    /// already spilled (or kept re-spilling it).
    DoubleSpill {
        /// Offending job.
        job: JobId,
    },
    /// A spilled job completed outside its spill target — e.g. the
    /// forwarder kept (and ran) a job it had handed off.
    CompletedAfterSpillOut {
        /// Offending job.
        job: JobId,
        /// The worker that completed it outside the target shard.
        worker: WorkerId,
    },
    /// Two shards recorded `SpillIn` for one job: the hand-off was
    /// delivered more than once.
    DuplicateSpillIn {
        /// Offending job.
        job: JobId,
    },
    /// A job was placed on a worker after that worker began draining —
    /// a draining worker is out of the roster and takes no new work.
    AssignedWhileDraining {
        /// Offending job.
        job: JobId,
        /// The draining assignee.
        worker: WorkerId,
    },
    /// A job was placed on a worker after `WorkerRemoved` — the worker
    /// had permanently left the cluster.
    AssignedAfterRemoval {
        /// Offending job.
        job: JobId,
        /// The departed assignee.
        worker: WorkerId,
    },
    /// Atomization: a task was released (`TaskOffer`) before every
    /// predecessor had a committed `TaskDone` — the DAG gate was
    /// ignored.
    OfferBeforePredecessor {
        /// Root id of the DAG.
        root: JobId,
        /// The prematurely released task.
        task: u32,
    },
    /// Atomization: a second effective completion (`TaskDone`) was
    /// logged for one task — speculation failed to keep completion
    /// exactly-once.
    TaskCompletedTwice {
        /// Root id of the DAG.
        root: JobId,
        /// The doubly completed task.
        task: u32,
    },
    /// Atomization: a second `SpecLaunch` was committed for one task —
    /// the launched-once guard was bypassed.
    DuplicateSpeculation {
        /// Root id of the DAG.
        root: JobId,
        /// The doubly speculated task.
        task: u32,
    },
    /// Atomization: a `Completed` was logged for an attempt whose
    /// `SpecCancel` had already committed — cancellation is terminal.
    CompletedAfterCancel {
        /// The cancelled attempt's job id.
        job: JobId,
    },
    /// End of log: a task was released into allocation but never
    /// effectively completed.
    TaskNeverCompleted {
        /// Root id of the DAG.
        root: JobId,
        /// The incomplete task.
        task: u32,
    },
    /// End of log: a task of a registered DAG was never released at
    /// all — its stage was orphaned (e.g. a predecessor's completion
    /// never unlocked it).
    OrphanedStage {
        /// Root id of the DAG.
        root: JobId,
        /// The never-released task.
        task: u32,
    },
    /// Replicated data plane: an eviction (`replica_drop` with
    /// `evicted = true`) removed an object's last live copy. Cache
    /// pressure must never destroy data the cluster cannot re-create
    /// from a peer — the sole surviving copy is pinned.
    EvictedLastCopy {
        /// The object whose last copy was discarded.
        object: u64,
        /// The worker that evicted it.
        worker: WorkerId,
    },
    /// Replicated data plane, end of log: an object's last live copy
    /// was voluntarily discarded by eviction and never re-established —
    /// the data plane *ended* the run having thrown the artifact away.
    /// (Crash-caused losses are involuntary and re-creatable from the
    /// master; they do not trip this.)
    LostLastReplica {
        /// The object that ended the run with zero live copies.
        object: u64,
    },
    /// Replicated data plane, end of log: a re-replication was
    /// committed (`repair_start`) but its `repair_done` never arrived —
    /// commit-before-copy promises every committed repair completes.
    RepairNeverCompleted {
        /// The object whose repair was abandoned.
        object: u64,
    },
    /// Replicated data plane: a second `repair_start` was committed
    /// for an object whose previous repair had not completed, or a
    /// `repair_done` arrived with no open repair — the one-in-flight
    /// discipline (which is what makes failover resumption idempotent)
    /// was violated.
    DuplicateRepair {
        /// The doubly repaired object.
        object: u64,
    },
    /// Replicated data plane: a peer fetch was requested from a worker
    /// the log says no longer holds the object (its copy was dropped
    /// and never re-added) — the scheduler routed a transfer to a
    /// stale replica.
    FetchFromNonReplica {
        /// The requested object.
        object: u64,
        /// The stale source.
        from: WorkerId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DuplicateSubmit { job } => write!(f, "job {} submitted twice", job.0),
            Violation::NonFiniteBid { job, worker } => {
                write!(f, "non-finite bid on job {} from w{}", job.0, worker.0)
            }
            Violation::BidAfterClose { job, worker } => {
                write!(
                    f,
                    "bid on job {} from w{} outside an open contest",
                    job.0, worker.0
                )
            }
            Violation::DuplicateBid { job, worker } => {
                write!(f, "duplicate bid on job {} from w{}", job.0, worker.0)
            }
            Violation::AssignmentWithoutBid { job, worker } => {
                write!(
                    f,
                    "job {} assigned to w{} without a winning bid",
                    job.0, worker.0
                )
            }
            Violation::AssignedWhilePlaced {
                job,
                worker,
                previous,
            } => write!(
                f,
                "job {} placed on w{} while still placed on w{}",
                job.0, worker.0, previous.0
            ),
            Violation::RejectWithoutOffer { job, worker } => {
                write!(
                    f,
                    "w{} rejected job {} it was never offered",
                    worker.0, job.0
                )
            }
            Violation::ReofferToRejector { job, worker } => {
                write!(
                    f,
                    "job {} re-offered straight back to rejector w{}",
                    job.0, worker.0
                )
            }
            Violation::CompletedUnknownJob { job } => {
                write!(f, "completion for never-submitted job {}", job.0)
            }
            Violation::CompletedTwice { job, worker } => {
                write!(
                    f,
                    "job {} completed twice (duplicate from w{})",
                    job.0, worker.0
                )
            }
            Violation::CompletedWithoutPlacement { job, worker } => {
                write!(
                    f,
                    "job {} completed by w{} without being placed there",
                    job.0, worker.0
                )
            }
            Violation::RedistributionWithLiveOwner { job, worker } => write!(
                f,
                "job {} redistributed from w{} which never held it while dead",
                job.0, worker.0
            ),
            Violation::RedistributedAfterCompletion { job } => {
                write!(f, "job {} redistributed after completing", job.0)
            }
            Violation::LeaseExpiredAfterAck { job, worker } => write!(
                f,
                "lease on job {} expired although w{} acked the placement",
                job.0, worker.0
            ),
            Violation::LeaseExpiredAfterCompletion { job } => {
                write!(f, "lease on job {} expired after it completed", job.0)
            }
            Violation::NegativeQueue { worker, depth } => {
                write!(f, "w{} placement ledger went negative ({depth})", worker.0)
            }
            Violation::JobLost { job } => write!(f, "job {} submitted but never completed", job.0),
            Violation::SpillOutWithoutSpillIn { job, to_shard } => write!(
                f,
                "job {} spilled to shard {} but never received there",
                job.0, to_shard.0
            ),
            Violation::SpillInWithoutSpillOut { job, from_shard } => write!(
                f,
                "job {} received as a spill from shard {} that never handed it off",
                job.0, from_shard.0
            ),
            Violation::DoubleSpill { job } => write!(f, "job {} spilled twice", job.0),
            Violation::CompletedAfterSpillOut { job, worker } => write!(
                f,
                "job {} completed by w{} outside its spill target",
                job.0, worker.0
            ),
            Violation::DuplicateSpillIn { job } => {
                write!(f, "job {} received as a spill twice", job.0)
            }
            Violation::AssignedWhileDraining { job, worker } => {
                write!(f, "job {} placed on draining worker w{}", job.0, worker.0)
            }
            Violation::AssignedAfterRemoval { job, worker } => {
                write!(f, "job {} placed on removed worker w{}", job.0, worker.0)
            }
            Violation::OfferBeforePredecessor { root, task } => write!(
                f,
                "dag {} task {} offered before its predecessors completed",
                root.0, task
            ),
            Violation::TaskCompletedTwice { root, task } => write!(
                f,
                "dag {} task {} effectively completed twice",
                root.0, task
            ),
            Violation::DuplicateSpeculation { root, task } => {
                write!(f, "dag {} task {} speculated twice", root.0, task)
            }
            Violation::CompletedAfterCancel { job } => {
                write!(f, "cancelled attempt {} completed anyway", job.0)
            }
            Violation::TaskNeverCompleted { root, task } => {
                write!(
                    f,
                    "dag {} task {} offered but never completed",
                    root.0, task
                )
            }
            Violation::OrphanedStage { root, task } => {
                write!(
                    f,
                    "dag {} task {} never released (orphaned stage)",
                    root.0, task
                )
            }
            Violation::EvictedLastCopy { object, worker } => {
                write!(
                    f,
                    "w{} evicted the last copy of object {}",
                    worker.0, object
                )
            }
            Violation::LostLastReplica { object } => {
                write!(
                    f,
                    "object {object} ended the run with zero live copies after an eviction"
                )
            }
            Violation::RepairNeverCompleted { object } => {
                write!(f, "committed repair of object {object} never completed")
            }
            Violation::DuplicateRepair { object } => {
                write!(f, "overlapping or unmatched repair for object {object}")
            }
            Violation::FetchFromNonReplica { object, from } => {
                write!(
                    f,
                    "peer fetch of object {} requested from w{} which no longer holds it",
                    object, from.0
                )
            }
        }
    }
}

/// What the oracle should enforce beyond the always-on invariants.
#[derive(Debug, Clone, Copy)]
pub struct OracleOptions {
    /// Require every submitted job to have completed by end of log.
    /// Turn off for runs that legitimately end partial (e.g. the whole
    /// cluster dead with no recovery scheduled).
    pub expect_all_complete: bool,
    /// Enforce the Baseline's prefer-a-different-worker re-offer rule
    /// (reject-once routing): a job bouncing straight back to its last
    /// rejector is a violation *when another live worker was idle*
    /// (placement depth 0). Only sound without chaos: message
    /// reordering can make the master's idle view lag the log's.
    pub strict_reoffer: bool,
    /// Cluster size, when known. Lets the strict re-offer check count
    /// workers that are idle because they never appear in the log at
    /// all; `None` falls back to workers seen so far.
    pub workers: Option<u32>,
    /// The log is a merged multi-shard federation log: every `SpillIn`
    /// must pair with an earlier `SpillOut`, every `SpillOut` must
    /// eventually pair with a `SpillIn`, and a spilled job completes
    /// only in its spill-target shard (worker ids are shard-qualified
    /// in a merged log). Leave off for single-shard logs, where a
    /// `SpillIn` legitimately stands alone as the job's submission.
    pub federated: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            expect_all_complete: true,
            strict_reoffer: false,
            workers: None,
            federated: false,
        }
    }
}

#[derive(Default)]
struct JobState {
    submitted: bool,
    completed: bool,
    redistributed: bool,
    /// A contest was ever opened for this job (distinguishes the
    /// bidding protocol from direct-assignment schedulers).
    had_contest: bool,
    contest_open: bool,
    /// Bids recorded in the currently open contest.
    bids: HashSet<u32>,
    /// Set at `ContestClosed`, consumed by the next `Assigned`:
    /// `(bidders at close, fallback)`.
    closed: Option<(HashSet<u32>, bool)>,
    /// Where the job currently sits, per the log.
    placed: Option<u32>,
    /// The current placement was acknowledged (`AssignAcked`); reset
    /// on every new placement.
    acked: bool,
    /// Event index of the last placement, per worker.
    placed_at: HashMap<u32, usize>,
    /// Who rejected it last (Baseline).
    last_rejector: Option<u32>,
    /// The shard this job was handed off to (`SpillOut`).
    spilled_out: Option<ShardId>,
    /// A shard recorded receiving this job (`SpillIn`).
    spilled_in: bool,
    /// A `SpecCancel` committed for this job: the losing attempt of a
    /// speculated task. Terminal — exempt from `JobLost`, and any
    /// later `Completed` is a violation.
    cancelled: bool,
}

/// Per-DAG bookkeeping for atomized runs, keyed by root id.
#[derive(Default)]
struct DagCheck {
    /// Task count, from `TaskOffer`'s `total` field.
    total: u32,
    /// Tasks with a committed `TaskDone`.
    done: u64,
    /// Tasks released by a `TaskOffer`.
    offered: u64,
    /// Tasks with a committed `SpecLaunch`.
    spec_launched: u64,
}

/// The invariant oracle. Feed events in log order (or just call
/// [`check_log`]), then [`Oracle::finish`].
pub struct Oracle {
    opts: OracleOptions,
    jobs: HashMap<JobId, JobState>,
    /// Per worker: event index of the last crash.
    last_crash: HashMap<u32, usize>,
    /// Per worker: event indices of every recovery.
    recoveries: HashMap<u32, Vec<usize>>,
    /// Workers currently crashed (no recovery yet).
    dead: HashSet<u32>,
    /// Workers draining (out of the roster, finishing their queues).
    draining: HashSet<u32>,
    /// Workers permanently departed (`WorkerRemoved`).
    removed: HashSet<u32>,
    /// Per worker: net placements (placements − rejections −
    /// completions − reclaims).
    depth: HashMap<u32, i64>,
    n_workers_seen: HashSet<u32>,
    /// Atomized DAGs seen in the log, keyed by root id.
    dags: HashMap<JobId, DagCheck>,
    /// Replicated data plane: live holders per object, from
    /// `replica_add`/`replica_drop`. (Warm-seeded copies predate the
    /// log; a holder the oracle never saw is simply unknown, not
    /// stale.)
    replica_holders: HashMap<u64, HashSet<u32>>,
    /// Workers whose copy of an object was dropped and not re-added —
    /// the *known-stale* sources a fetch must not be routed to.
    replica_dropped: HashMap<u64, HashSet<u32>>,
    /// Whether each object's most recent drop was an eviction.
    last_drop_was_eviction: HashMap<u64, bool>,
    /// Objects with a committed `repair_start` awaiting `repair_done`.
    open_repairs: HashSet<u64>,
    idx: usize,
    violations: Vec<Violation>,
}

impl Oracle {
    /// Fresh oracle.
    pub fn new(opts: OracleOptions) -> Self {
        Oracle {
            opts,
            jobs: HashMap::new(),
            last_crash: HashMap::new(),
            recoveries: HashMap::new(),
            dead: HashSet::new(),
            draining: HashSet::new(),
            removed: HashSet::new(),
            depth: HashMap::new(),
            n_workers_seen: HashSet::new(),
            dags: HashMap::new(),
            replica_holders: HashMap::new(),
            replica_dropped: HashMap::new(),
            last_drop_was_eviction: HashMap::new(),
            open_repairs: HashSet::new(),
            idx: 0,
            violations: Vec::new(),
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn place(&mut self, job: JobId, w: u32) {
        let idx = self.idx;
        let js = self.jobs.entry(job).or_default();
        js.placed = Some(w);
        js.acked = false;
        js.placed_at.insert(w, idx);
        *self.depth.entry(w).or_insert(0) += 1;
    }

    fn unplace(&mut self, job: JobId) {
        if let Some(w) = self.jobs.entry(job).or_default().placed.take() {
            let d = self.depth.entry(w).or_insert(0);
            *d -= 1;
            if *d < 0 {
                self.violations.push(Violation::NegativeQueue {
                    worker: WorkerId(w),
                    depth: *d,
                });
            }
        }
    }

    /// Feed one event.
    pub fn observe(&mut self, ev: &SchedEvent) {
        let job = ev.job;
        let worker = ev.worker;
        if let Some(w) = worker {
            self.n_workers_seen.insert(w.0);
        }
        match &ev.kind {
            SchedEventKind::Submitted => {
                let job = job.expect("submitted carries a job");
                let js = self.jobs.entry(job).or_default();
                if js.submitted {
                    self.violations.push(Violation::DuplicateSubmit { job });
                }
                js.submitted = true;
            }
            SchedEventKind::ContestOpened => {
                let job = job.expect("contest_opened carries a job");
                let js = self.jobs.entry(job).or_default();
                js.had_contest = true;
                // Re-opening (a parked contest, or re-entry after
                // redistribution) resets the bid set.
                js.contest_open = true;
                js.bids.clear();
                js.closed = None;
            }
            SchedEventKind::BidReceived { estimate_secs } => {
                let job = job.expect("bid carries a job");
                let w = worker.expect("bid carries a worker");
                if !estimate_secs.is_finite() {
                    self.violations
                        .push(Violation::NonFiniteBid { job, worker: w });
                }
                let js = self.jobs.entry(job).or_default();
                if !js.contest_open {
                    self.violations
                        .push(Violation::BidAfterClose { job, worker: w });
                } else if !js.bids.insert(w.0) {
                    self.violations
                        .push(Violation::DuplicateBid { job, worker: w });
                }
            }
            SchedEventKind::ContestClosed { fallback, .. } => {
                let job = job.expect("contest_closed carries a job");
                let js = self.jobs.entry(job).or_default();
                js.contest_open = false;
                js.closed = Some((std::mem::take(&mut js.bids), *fallback));
            }
            SchedEventKind::Assigned => {
                let job = job.expect("assigned carries a job");
                let w = worker.expect("assigned carries a worker");
                let js = self.jobs.entry(job).or_default();
                if let Some(prev) = js.placed {
                    self.violations.push(Violation::AssignedWhilePlaced {
                        job,
                        worker: w,
                        previous: WorkerId(prev),
                    });
                }
                if js.had_contest {
                    match js.closed.take() {
                        Some((bidders, fallback)) => {
                            if !fallback && !bidders.contains(&w.0) {
                                self.violations
                                    .push(Violation::AssignmentWithoutBid { job, worker: w });
                            }
                        }
                        // An assignment with no contest close at all —
                        // e.g. a late bid "reopening" the decision.
                        None => self
                            .violations
                            .push(Violation::AssignmentWithoutBid { job, worker: w }),
                    }
                }
                self.check_membership_placement(job, w);
                self.place(job, w.0);
            }
            SchedEventKind::Offered => {
                let job = job.expect("offered carries a job");
                let w = worker.expect("offered carries a worker");
                let js = self.jobs.entry(job).or_default();
                if let Some(prev) = js.placed {
                    self.violations.push(Violation::AssignedWhilePlaced {
                        job,
                        worker: w,
                        previous: WorkerId(prev),
                    });
                }
                if self.opts.strict_reoffer && js.last_rejector == Some(w.0) {
                    // A bounce straight back is only a routing bug if
                    // the master had somewhere better to send it: a
                    // live worker with nothing placed on it.
                    let other_idle = |i: u32| {
                        i != w.0
                            && !self.dead.contains(&i)
                            && !self.draining.contains(&i)
                            && self.depth.get(&i).copied().unwrap_or(0) == 0
                    };
                    let had_alternative = match self.opts.workers {
                        Some(n) => (0..n).any(other_idle),
                        None => self.n_workers_seen.iter().copied().any(other_idle),
                    };
                    if had_alternative {
                        self.violations
                            .push(Violation::ReofferToRejector { job, worker: w });
                    }
                }
                self.check_membership_placement(job, w);
                self.place(job, w.0);
            }
            SchedEventKind::Rejected => {
                let job = job.expect("rejected carries a job");
                let w = worker.expect("rejected carries a worker");
                let js = self.jobs.entry(job).or_default();
                if js.placed != Some(w.0) {
                    self.violations
                        .push(Violation::RejectWithoutOffer { job, worker: w });
                } else {
                    self.unplace(job);
                }
                self.jobs.entry(job).or_default().last_rejector = Some(w.0);
            }
            SchedEventKind::Completed => {
                let job = job.expect("completed carries a job");
                let w = worker.expect("completed carries a worker");
                let js = self.jobs.entry(job).or_default();
                if !js.submitted {
                    self.violations.push(Violation::CompletedUnknownJob { job });
                }
                if js.completed {
                    self.violations
                        .push(Violation::CompletedTwice { job, worker: w });
                }
                if js.cancelled {
                    self.violations
                        .push(Violation::CompletedAfterCancel { job });
                }
                let ever_placed_here = js.placed_at.contains_key(&w.0);
                let placed_somewhere = js.placed.is_some() || js.redistributed;
                js.completed = true;
                if !ever_placed_here || !placed_somewhere {
                    self.violations
                        .push(Violation::CompletedWithoutPlacement { job, worker: w });
                }
                // A handed-off job belongs to its spill target: in a
                // merged log (shard-qualified worker ids) a completion
                // anywhere else means the forwarder kept the job.
                if self.opts.federated {
                    if let Some(to) = js.spilled_out {
                        if w.shard() != to {
                            self.violations
                                .push(Violation::CompletedAfterSpillOut { job, worker: w });
                        }
                    }
                }
                self.unplace(job);
            }
            SchedEventKind::Redistributed => {
                let job = job.expect("redistributed carries a job");
                let js = self.jobs.entry(job).or_default();
                if js.completed {
                    self.violations
                        .push(Violation::RedistributedAfterCompletion { job });
                }
                // The engine logs the reclaim without the owner (it
                // reclaims at the monitoring layer); the threaded
                // master names the dead owner — hold it to account.
                // Legal reclaims are (a) the owner crashed *after*
                // the placement (died holding the job), or (b) the
                // placement happened inside the owner's dead window —
                // the masking interval where the master schedules
                // against a stale roster until detection fires.
                if let Some(w) = worker {
                    let placed_idx = js.placed_at.get(&w.0).copied();
                    let crash_idx = self.last_crash.get(&w.0).copied();
                    let legal = match (placed_idx, crash_idx) {
                        (Some(p), Some(c)) => {
                            let recovered_between = self
                                .recoveries
                                .get(&w.0)
                                .is_some_and(|rs| rs.iter().any(|r| *r > c && *r <= p));
                            c > p || !recovered_between
                        }
                        _ => false,
                    };
                    if !legal {
                        self.violations
                            .push(Violation::RedistributionWithLiveOwner { job, worker: w });
                    }
                }
                self.unplace(job);
                let js = self.jobs.entry(job).or_default();
                js.redistributed = true;
                js.contest_open = false;
                js.closed = None;
            }
            SchedEventKind::AssignAcked => {
                let job = job.expect("assign_acked carries a job");
                let w = worker.expect("assign_acked carries a worker");
                let js = self.jobs.entry(job).or_default();
                // Only the current placement can be confirmed; a stale
                // ack (the placement already bounced or completed) is
                // simply late network news, not a protocol step.
                if js.placed == Some(w.0) {
                    js.acked = true;
                }
            }
            SchedEventKind::LeaseExpired => {
                let job = job.expect("lease_expired carries a job");
                let js = self.jobs.entry(job).or_default();
                if js.completed {
                    self.violations
                        .push(Violation::LeaseExpiredAfterCompletion { job });
                }
                // A lease exists to bound *silence*: once the worker
                // acked the placement, letting the timers run anyway
                // means the master is discarding confirmed state.
                if let Some(w) = worker {
                    if js.acked && js.placed == Some(w.0) {
                        self.violations
                            .push(Violation::LeaseExpiredAfterAck { job, worker: w });
                    }
                }
                // Effect mirrors `Redistributed` — the job is
                // reclaimed and re-enters scheduling through a fresh
                // contest — but with no dead-owner requirement: the
                // owner may be perfectly alive behind a lossy link.
                self.unplace(job);
                let js = self.jobs.entry(job).or_default();
                js.redistributed = true;
                js.contest_open = false;
                js.closed = None;
            }
            // Retransmissions are informational: the same placement
            // (same seq) going out again changes no protocol state.
            SchedEventKind::Resent { .. } => {}
            SchedEventKind::Crash => {
                let w = worker.expect("crash carries a worker");
                self.last_crash.insert(w.0, self.idx);
                self.dead.insert(w.0);
            }
            SchedEventKind::Recover => {
                if let Some(w) = worker {
                    self.recoveries.entry(w.0).or_default().push(self.idx);
                    self.dead.remove(&w.0);
                }
            }
            SchedEventKind::SpillOut { to_shard } => {
                let job = job.expect("spill_out carries a job");
                let js = self.jobs.entry(job).or_default();
                if js.spilled_out.is_some() {
                    self.violations.push(Violation::DoubleSpill { job });
                }
                js.spilled_out = Some(*to_shard);
            }
            SchedEventKind::SpillIn { from_shard } => {
                let job = job.expect("spill_in carries a job");
                let js = self.jobs.entry(job).or_default();
                if js.spilled_in {
                    self.violations.push(Violation::DuplicateSpillIn { job });
                }
                js.spilled_in = true;
                if self.opts.federated {
                    // Merged log: the home shard must have handed the
                    // job off before any shard can receive it.
                    if js.spilled_out.is_none() {
                        self.violations.push(Violation::SpillInWithoutSpillOut {
                            job,
                            from_shard: *from_shard,
                        });
                    }
                } else if js.submitted {
                    // Single-shard view: the spill-in *is* the job's
                    // submission in this shard.
                    self.violations.push(Violation::DuplicateSubmit { job });
                }
                js.submitted = true;
            }
            SchedEventKind::WorkerJoined => {
                if let Some(w) = worker {
                    self.dead.remove(&w.0);
                    self.draining.remove(&w.0);
                    self.removed.remove(&w.0);
                }
            }
            SchedEventKind::WorkerDraining => {
                let w = worker.expect("worker_draining carries a worker");
                self.draining.insert(w.0);
            }
            SchedEventKind::WorkerRemoved => {
                let w = worker.expect("worker_removed carries a worker");
                self.draining.remove(&w.0);
                self.removed.insert(w.0);
                // An administrative removal reclaims outstanding work
                // like a crash does: redistributions from the departed
                // owner are legal from here on.
                self.last_crash.insert(w.0, self.idx);
                self.dead.insert(w.0);
            }
            // Master failover markers. Every conservation and
            // exactly-once invariant above is *designed* to hold
            // across an election: the standby replays the same
            // committed prefix the oracle just consumed, so placements,
            // rejections and completions continue seamlessly in the
            // new term. The markers themselves change no job state.
            SchedEventKind::LeaderElected { .. } => {}
            SchedEventKind::FailoverReplayed { .. } => {}
            SchedEventKind::TaskOffer {
                root,
                task,
                preds,
                total,
            } => {
                let d = self.dags.entry(*root).or_default();
                d.total = d.total.max(*total);
                // Predecessor-before-successor: every pred bit must
                // already be in the root's done mask.
                if preds & !d.done != 0 {
                    self.violations.push(Violation::OfferBeforePredecessor {
                        root: *root,
                        task: *task,
                    });
                }
                d.offered |= 1 << task;
            }
            // Task bids annotate the generic `BidReceived` the bid
            // invariants already cover.
            SchedEventKind::TaskBid { .. } => {}
            // Placements are checked through the generic
            // `Assigned`/`Offered` rules on the task's job.
            SchedEventKind::TaskAssign { .. } => {}
            SchedEventKind::TaskDone { root, task } => {
                let d = self.dags.entry(*root).or_default();
                let bit = 1u64 << task;
                // At most one *effective* completion per task.
                if d.done & bit != 0 {
                    self.violations.push(Violation::TaskCompletedTwice {
                        root: *root,
                        task: *task,
                    });
                }
                d.done |= bit;
            }
            SchedEventKind::SpecLaunch { root, task } => {
                let d = self.dags.entry(*root).or_default();
                let bit = 1u64 << task;
                if d.spec_launched & bit != 0 {
                    self.violations.push(Violation::DuplicateSpeculation {
                        root: *root,
                        task: *task,
                    });
                }
                d.spec_launched |= bit;
            }
            SchedEventKind::SpecCancel { .. } => {
                let job = job.expect("spec_cancel carries the losing job");
                self.jobs.entry(job).or_default().cancelled = true;
            }
            SchedEventKind::FetchReq { object, from } => {
                if self
                    .replica_dropped
                    .get(object)
                    .is_some_and(|d| d.contains(&from.0))
                {
                    self.violations.push(Violation::FetchFromNonReplica {
                        object: *object,
                        from: *from,
                    });
                }
            }
            // Fetch outcomes change no replica state: an ok confirms a
            // transfer, a fail hands the attempt to the retry loop.
            SchedEventKind::FetchOk { .. } | SchedEventKind::FetchFail { .. } => {}
            SchedEventKind::ReplicaAdd { object } => {
                let w = worker.expect("replica_add carries a worker");
                self.replica_holders.entry(*object).or_default().insert(w.0);
                if let Some(d) = self.replica_dropped.get_mut(object) {
                    d.remove(&w.0);
                }
            }
            SchedEventKind::ReplicaDrop { object, evicted } => {
                let w = worker.expect("replica_drop carries a worker");
                let holders = self.replica_holders.entry(*object).or_default();
                holders.remove(&w.0);
                let emptied = holders.is_empty();
                self.replica_dropped.entry(*object).or_default().insert(w.0);
                self.last_drop_was_eviction.insert(*object, *evicted);
                if *evicted && emptied {
                    self.violations.push(Violation::EvictedLastCopy {
                        object: *object,
                        worker: w,
                    });
                }
            }
            SchedEventKind::RepairStart { object, .. } => {
                if !self.open_repairs.insert(*object) {
                    self.violations
                        .push(Violation::DuplicateRepair { object: *object });
                }
            }
            SchedEventKind::RepairDone { object } => {
                if !self.open_repairs.remove(object) {
                    self.violations
                        .push(Violation::DuplicateRepair { object: *object });
                }
            }
        }
        self.idx += 1;
    }

    /// End-of-log checks; returns all violations found.
    pub fn finish(mut self) -> Vec<Violation> {
        if self.opts.expect_all_complete {
            // In a *single-shard* log a spilled-out job legitimately
            // never completes here — it belongs to the target shard.
            // In a merged federated log it must complete somewhere.
            let mut lost: Vec<JobId> = self
                .jobs
                .iter()
                .filter(|(_, js)| {
                    js.submitted
                        && !js.completed
                        && !js.cancelled
                        && (self.opts.federated || js.spilled_out.is_none())
                })
                .map(|(id, _)| *id)
                .collect();
            lost.sort_by_key(|j| j.0);
            for job in lost {
                self.violations.push(Violation::JobLost { job });
            }
            // Per-task conservation: every task of every registered
            // DAG must have been released and effectively completed.
            let mut roots: Vec<JobId> = self.dags.keys().copied().collect();
            roots.sort_by_key(|r| r.0);
            for root in roots {
                let d = &self.dags[&root];
                for task in 0..d.total {
                    let bit = 1u64 << task;
                    if d.done & bit != 0 {
                        continue;
                    }
                    if d.offered & bit != 0 {
                        self.violations
                            .push(Violation::TaskNeverCompleted { root, task });
                    } else {
                        self.violations
                            .push(Violation::OrphanedStage { root, task });
                    }
                }
            }
        }
        if self.opts.expect_all_complete {
            // Commit-before-copy: every committed repair must land
            // within the run (the engines hold the run open until the
            // repair queue drains). Partial runs legitimately truncate
            // repairs, hence the gate.
            let mut abandoned: Vec<u64> = self.open_repairs.iter().copied().collect();
            abandoned.sort_unstable();
            for object in abandoned {
                self.violations
                    .push(Violation::RepairNeverCompleted { object });
            }
            // An object whose last copy was *evicted* (not crashed
            // away) and never restored ended the run discarded by
            // choice.
            let mut lost: Vec<u64> = self
                .replica_holders
                .iter()
                .filter(|(obj, holders)| {
                    holders.is_empty() && self.last_drop_was_eviction.get(*obj) == Some(&true)
                })
                .map(|(obj, _)| *obj)
                .collect();
            lost.sort_unstable();
            for object in lost {
                self.violations.push(Violation::LostLastReplica { object });
            }
        }
        if self.opts.federated {
            let mut unreceived: Vec<(JobId, ShardId)> = self
                .jobs
                .iter()
                .filter_map(|(id, js)| match js.spilled_out {
                    Some(to) if !js.spilled_in => Some((*id, to)),
                    _ => None,
                })
                .collect();
            unreceived.sort_by_key(|(j, _)| j.0);
            for (job, to_shard) in unreceived {
                self.violations
                    .push(Violation::SpillOutWithoutSpillIn { job, to_shard });
            }
        }
        self.violations
    }

    /// Placements onto draining or departed workers are membership
    /// violations regardless of scheduler.
    fn check_membership_placement(&mut self, job: JobId, w: WorkerId) {
        if self.removed.contains(&w.0) {
            self.violations
                .push(Violation::AssignedAfterRemoval { job, worker: w });
        } else if self.draining.contains(&w.0) {
            self.violations
                .push(Violation::AssignedWhileDraining { job, worker: w });
        }
    }
}

/// Run the oracle over a complete log.
pub fn check_log(log: &SchedLog, opts: OracleOptions) -> Vec<Violation> {
    let mut o = Oracle::new(opts);
    for ev in log.events() {
        o.observe(ev);
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_simcore::SimTime;

    fn ev(kind: SchedEventKind, worker: Option<u32>, job: Option<u64>) -> SchedEvent {
        SchedEvent {
            at: SimTime::ZERO,
            worker: worker.map(WorkerId),
            job: job.map(JobId),
            kind,
        }
    }

    fn clean_bidding_log() -> SchedLog {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::ContestOpened, None, Some(0)));
        log.push(ev(
            SchedEventKind::BidReceived { estimate_secs: 2.0 },
            Some(0),
            Some(0),
        ));
        log.push(ev(
            SchedEventKind::BidReceived { estimate_secs: 1.0 },
            Some(1),
            Some(0),
        ));
        log.push(ev(
            SchedEventKind::ContestClosed {
                timed_out: false,
                fallback: false,
            },
            None,
            Some(0),
        ));
        log.push(ev(SchedEventKind::Assigned, Some(1), Some(0)));
        log.push(ev(SchedEventKind::Completed, Some(1), Some(0)));
        log
    }

    #[test]
    fn clean_log_passes() {
        assert_eq!(
            check_log(&clean_bidding_log(), OracleOptions::default()),
            vec![]
        );
    }

    #[test]
    fn lost_job_is_flagged_only_when_expected_complete() {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(3)));
        let v = check_log(&log, OracleOptions::default());
        assert_eq!(v, vec![Violation::JobLost { job: JobId(3) }]);
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn non_finite_and_duplicate_bids_are_flagged() {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::ContestOpened, None, Some(0)));
        log.push(ev(
            SchedEventKind::BidReceived {
                estimate_secs: f64::NAN,
            },
            Some(0),
            Some(0),
        ));
        log.push(ev(
            SchedEventKind::BidReceived { estimate_secs: 1.0 },
            Some(1),
            Some(0),
        ));
        log.push(ev(
            SchedEventKind::BidReceived { estimate_secs: 0.5 },
            Some(1),
            Some(0),
        ));
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert!(v.contains(&Violation::NonFiniteBid {
            job: JobId(0),
            worker: WorkerId(0)
        }));
        assert!(v.contains(&Violation::DuplicateBid {
            job: JobId(0),
            worker: WorkerId(1)
        }));
    }

    #[test]
    fn late_assignment_without_close_is_flagged() {
        let mut log = clean_bidding_log();
        // A second Assigned with no second close: the late-bid steal.
        log.push(ev(SchedEventKind::Assigned, Some(2), Some(0)));
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert!(v.contains(&Violation::AssignmentWithoutBid {
            job: JobId(0),
            worker: WorkerId(2)
        }));
    }

    #[test]
    fn double_placement_and_double_completion_are_flagged() {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(1), Some(0)));
        log.push(ev(SchedEventKind::Completed, Some(1), Some(0)));
        log.push(ev(SchedEventKind::Completed, Some(1), Some(0)));
        let v = check_log(&log, OracleOptions::default());
        assert!(v.contains(&Violation::AssignedWhilePlaced {
            job: JobId(0),
            worker: WorkerId(1),
            previous: WorkerId(0)
        }));
        assert!(v.contains(&Violation::CompletedTwice {
            job: JobId(0),
            worker: WorkerId(1)
        }));
    }

    #[test]
    fn reoffer_to_rejector_fires_only_when_an_alternative_was_idle() {
        // One job bounces straight back to its rejector while worker 1
        // (known from the cluster size, never in the log) sits idle.
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        log.push(ev(SchedEventKind::Rejected, Some(0), Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        log.push(ev(SchedEventKind::Completed, Some(0), Some(0)));
        let relaxed = check_log(&log, OracleOptions::default());
        assert_eq!(relaxed, vec![]);
        let strict = |workers| OracleOptions {
            strict_reoffer: true,
            workers: Some(workers),
            ..OracleOptions::default()
        };
        assert!(
            check_log(&log, strict(2)).contains(&Violation::ReofferToRejector {
                job: JobId(0),
                worker: WorkerId(0)
            })
        );
        // A single-worker cluster has nowhere else to send it.
        assert_eq!(check_log(&log, strict(1)), vec![]);
        // Same bounce with the only other worker busy: legal.
        let mut busy = SchedLog::new();
        busy.push(ev(SchedEventKind::Submitted, None, Some(1)));
        busy.push(ev(SchedEventKind::Offered, Some(1), Some(1)));
        busy.push(ev(SchedEventKind::Submitted, None, Some(0)));
        busy.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        busy.push(ev(SchedEventKind::Rejected, Some(0), Some(0)));
        busy.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        busy.push(ev(SchedEventKind::Completed, Some(0), Some(0)));
        busy.push(ev(SchedEventKind::Completed, Some(1), Some(1)));
        assert_eq!(check_log(&busy, strict(2)), vec![]);
    }

    #[test]
    fn redistribution_requires_a_dead_owner() {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::ContestOpened, None, Some(0)));
        log.push(ev(
            SchedEventKind::BidReceived { estimate_secs: 1.0 },
            Some(0),
            Some(0),
        ));
        log.push(ev(
            SchedEventKind::ContestClosed {
                timed_out: false,
                fallback: false,
            },
            None,
            Some(0),
        ));
        log.push(ev(SchedEventKind::Assigned, Some(0), Some(0)));
        // Reclaim without a crash: violation.
        let mut bad = log.clone();
        bad.push(ev(SchedEventKind::Redistributed, Some(0), Some(0)));
        let v = check_log(
            &bad,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert!(v.contains(&Violation::RedistributionWithLiveOwner {
            job: JobId(0),
            worker: WorkerId(0)
        }));
        // Crash first: legitimate.
        log.push(ev(SchedEventKind::Crash, Some(0), None));
        log.push(ev(SchedEventKind::Redistributed, Some(0), Some(0)));
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn redistribution_tolerates_the_masking_window_but_not_a_recovered_owner() {
        let partial = OracleOptions {
            expect_all_complete: false,
            ..OracleOptions::default()
        };
        let assign = |log: &mut SchedLog, job: u64, w: u32| {
            log.push(ev(SchedEventKind::Submitted, None, Some(job)));
            log.push(ev(SchedEventKind::ContestOpened, None, Some(job)));
            log.push(ev(
                SchedEventKind::BidReceived { estimate_secs: 1.0 },
                Some(w),
                Some(job),
            ));
            log.push(ev(
                SchedEventKind::ContestClosed {
                    timed_out: false,
                    fallback: false,
                },
                None,
                Some(job),
            ));
            log.push(ev(SchedEventKind::Assigned, Some(w), Some(job)));
        };
        // Masking window: the crash precedes the assignment because
        // the master schedules against a stale roster until detection
        // fires — the reclaim is legitimate.
        let mut masked = SchedLog::new();
        masked.push(ev(SchedEventKind::Crash, Some(0), None));
        assign(&mut masked, 0, 0);
        masked.push(ev(SchedEventKind::Redistributed, Some(0), Some(0)));
        assert_eq!(check_log(&masked, partial), vec![]);
        // But a recovery between the crash and the assignment means
        // the owner was alive when it got the job: reclaiming it is a
        // violation.
        let mut recovered = SchedLog::new();
        recovered.push(ev(SchedEventKind::Crash, Some(0), None));
        recovered.push(ev(SchedEventKind::Recover, Some(0), None));
        assign(&mut recovered, 0, 0);
        recovered.push(ev(SchedEventKind::Redistributed, Some(0), Some(0)));
        assert!(
            check_log(&recovered, partial).contains(&Violation::RedistributionWithLiveOwner {
                job: JobId(0),
                worker: WorkerId(0)
            })
        );
    }

    #[test]
    fn lease_expiry_on_unacked_placement_is_legal_and_reclaims() {
        let partial = OracleOptions {
            expect_all_complete: false,
            ..OracleOptions::default()
        };
        // Assign is resent, never acked, the lease bounces it, and the
        // job re-enters through a fresh contest elsewhere: clean.
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::ContestOpened, None, Some(0)));
        log.push(ev(
            SchedEventKind::BidReceived { estimate_secs: 1.0 },
            Some(0),
            Some(0),
        ));
        log.push(ev(
            SchedEventKind::ContestClosed {
                timed_out: false,
                fallback: false,
            },
            None,
            Some(0),
        ));
        log.push(ev(SchedEventKind::Assigned, Some(0), Some(0)));
        log.push(ev(SchedEventKind::Resent { attempt: 0 }, Some(0), Some(0)));
        log.push(ev(SchedEventKind::LeaseExpired, Some(0), Some(0)));
        log.push(ev(SchedEventKind::ContestOpened, None, Some(0)));
        log.push(ev(
            SchedEventKind::BidReceived { estimate_secs: 1.0 },
            Some(1),
            Some(0),
        ));
        log.push(ev(
            SchedEventKind::ContestClosed {
                timed_out: false,
                fallback: false,
            },
            None,
            Some(0),
        ));
        log.push(ev(SchedEventKind::Assigned, Some(1), Some(0)));
        log.push(ev(SchedEventKind::AssignAcked, Some(1), Some(0)));
        log.push(ev(SchedEventKind::Completed, Some(1), Some(0)));
        assert_eq!(check_log(&log, OracleOptions::default()), vec![]);
        // A late Completed from the *first* worker (it executed but
        // its ack was lost) is the at-least-once duplicate the master
        // must dedup — the log shows only one Completed, and the
        // bounced placement must not flag CompletedWithoutPlacement.
        let mut late = SchedLog::new();
        late.push(ev(SchedEventKind::Submitted, None, Some(0)));
        late.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        late.push(ev(SchedEventKind::LeaseExpired, Some(0), Some(0)));
        late.push(ev(SchedEventKind::Completed, Some(0), Some(0)));
        assert_eq!(check_log(&late, partial), vec![]);
    }

    #[test]
    fn lease_expiry_on_acked_placement_is_flagged() {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        log.push(ev(SchedEventKind::AssignAcked, Some(0), Some(0)));
        log.push(ev(SchedEventKind::LeaseExpired, Some(0), Some(0)));
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert!(v.contains(&Violation::LeaseExpiredAfterAck {
            job: JobId(0),
            worker: WorkerId(0)
        }));
        // The ack belongs to the placement: after a bounce and a fresh
        // unacked placement, expiry is legal again.
        let mut rebounced = SchedLog::new();
        rebounced.push(ev(SchedEventKind::Submitted, None, Some(0)));
        rebounced.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        rebounced.push(ev(SchedEventKind::AssignAcked, Some(0), Some(0)));
        rebounced.push(ev(SchedEventKind::Rejected, Some(0), Some(0)));
        rebounced.push(ev(SchedEventKind::Offered, Some(1), Some(0)));
        rebounced.push(ev(SchedEventKind::LeaseExpired, Some(1), Some(0)));
        let v = check_log(
            &rebounced,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn lease_expiry_after_completion_is_flagged() {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        log.push(ev(SchedEventKind::Completed, Some(0), Some(0)));
        log.push(ev(SchedEventKind::LeaseExpired, Some(0), Some(0)));
        let v = check_log(&log, OracleOptions::default());
        assert!(v.contains(&Violation::LeaseExpiredAfterCompletion { job: JobId(0) }));
    }

    #[test]
    fn stale_ack_does_not_confirm_a_newer_placement() {
        // Ack from w0 arrives after the job bounced to w1: it must not
        // mark w1's placement acked, so w1's lease expiry stays legal.
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(0)));
        log.push(ev(SchedEventKind::LeaseExpired, Some(0), Some(0)));
        log.push(ev(SchedEventKind::Offered, Some(1), Some(0)));
        log.push(ev(SchedEventKind::AssignAcked, Some(0), Some(0)));
        log.push(ev(SchedEventKind::LeaseExpired, Some(1), Some(0)));
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn task_gating_and_exactly_once_invariants() {
        let root = 1000u64;
        let offer = |task: u32, preds: u64, job: u64| {
            ev(
                SchedEventKind::TaskOffer {
                    root: JobId(root),
                    task,
                    preds,
                    total: 2,
                },
                None,
                Some(job),
            )
        };
        let done = |task: u32, job: u64, w: u32| {
            ev(
                SchedEventKind::TaskDone {
                    root: JobId(root),
                    task,
                },
                Some(w),
                Some(job),
            )
        };
        // Clean two-task chain: offer 0, complete it, offer 1 (pred 0
        // now done), complete it.
        let mut log = SchedLog::new();
        log.push(offer(0, 0, 1));
        log.push(ev(SchedEventKind::Submitted, None, Some(1)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(1)));
        log.push(ev(SchedEventKind::Completed, Some(0), Some(1)));
        log.push(done(0, 1, 0));
        log.push(offer(1, 0b1, 2));
        log.push(ev(SchedEventKind::Submitted, None, Some(2)));
        log.push(ev(SchedEventKind::Offered, Some(0), Some(2)));
        log.push(ev(SchedEventKind::Completed, Some(0), Some(2)));
        log.push(done(1, 2, 0));
        assert_eq!(check_log(&log, OracleOptions::default()), vec![]);

        // Offering task 1 before task 0 completed: gate violation.
        let mut bad = SchedLog::new();
        bad.push(offer(0, 0, 1));
        bad.push(offer(1, 0b1, 2));
        let v = check_log(
            &bad,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert!(v.contains(&Violation::OfferBeforePredecessor {
            root: JobId(root),
            task: 1
        }));

        // A second TaskDone for one task: exactly-once violation.
        let mut dup = log.clone();
        dup.push(done(1, 2, 0));
        let v = check_log(&dup, OracleOptions::default());
        assert!(v.contains(&Violation::TaskCompletedTwice {
            root: JobId(root),
            task: 1
        }));
    }

    #[test]
    fn speculation_invariants() {
        let root = JobId(1000);
        let mut log = SchedLog::new();
        log.push(ev(
            SchedEventKind::SpecLaunch { root, task: 3 },
            None,
            Some(9),
        ));
        log.push(ev(
            SchedEventKind::SpecLaunch { root, task: 3 },
            None,
            Some(10),
        ));
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert!(v.contains(&Violation::DuplicateSpeculation { root, task: 3 }));

        // A cancelled loser is exempt from JobLost, but a Completed
        // after its SpecCancel is a violation.
        let mut c = SchedLog::new();
        c.push(ev(SchedEventKind::Submitted, None, Some(9)));
        c.push(ev(SchedEventKind::Offered, Some(0), Some(9)));
        c.push(ev(
            SchedEventKind::SpecCancel { root, task: 3 },
            None,
            Some(9),
        ));
        assert_eq!(check_log(&c, OracleOptions::default()), vec![]);
        c.push(ev(SchedEventKind::Completed, Some(0), Some(9)));
        let v = check_log(&c, OracleOptions::default());
        assert!(v.contains(&Violation::CompletedAfterCancel { job: JobId(9) }));
    }

    #[test]
    fn incomplete_dags_are_flagged_at_finish() {
        let root = JobId(1000);
        let mut log = SchedLog::new();
        // total=3: task 0 done, task 1 offered-but-never-done, task 2
        // never released at all.
        log.push(ev(
            SchedEventKind::TaskOffer {
                root,
                task: 0,
                preds: 0,
                total: 3,
            },
            None,
            Some(1),
        ));
        log.push(ev(
            SchedEventKind::TaskDone { root, task: 0 },
            Some(0),
            Some(1),
        ));
        log.push(ev(
            SchedEventKind::TaskOffer {
                root,
                task: 1,
                preds: 0b1,
                total: 3,
            },
            None,
            Some(2),
        ));
        let v = check_log(&log, OracleOptions::default());
        assert!(v.contains(&Violation::TaskNeverCompleted { root, task: 1 }));
        assert!(v.contains(&Violation::OrphanedStage { root, task: 2 }));
        // Partial runs don't demand DAG completion.
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn reject_without_offer_goes_negative() {
        let mut log = SchedLog::new();
        log.push(ev(SchedEventKind::Submitted, None, Some(0)));
        log.push(ev(SchedEventKind::Rejected, Some(0), Some(0)));
        let v = check_log(
            &log,
            OracleOptions {
                expect_all_complete: false,
                ..OracleOptions::default()
            },
        );
        assert!(v.contains(&Violation::RejectWithoutOffer {
            job: JobId(0),
            worker: WorkerId(0)
        }));
    }
}
