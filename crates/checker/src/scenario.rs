//! Checker scenarios: small, fully-specified workloads runnable on
//! either runtime.
//!
//! A [`Scenario`] is data, not code — a cluster shape, a job list and
//! a fault schedule — so the explorer can *shrink* it: re-run with a
//! subset of the jobs or without one worker's faults while keeping
//! everything else (seeds, chaos schedule parameters) fixed. The
//! built-in set covers the protocol surface PR 1 hardened: a hot
//! contested repository, the Baseline's reject-once routing, crash +
//! recovery redistribution, and a multi-repository spread.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_federation, Allocator, Arrival, AtomizeConfig, BaselineAllocator, ChaosConfig,
    EngineConfig, FaultPlan, Faults, FedArrival, FedRuntimeKind, FederationMutation,
    FederationOutput, FederationSpec, JobSpec, MasterFaultPlan, MembershipPlan, NetFaultPlan,
    Payload, ProtocolMutation, ReplicationConfig, ResourceRef, RunOutput, RunSpec, ShardId,
    ShardSpec, TaskId, WorkerId, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;
use crossbid_workload::DagConfig;

use crate::oracle::OracleOptions;

/// Which allocation protocol the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's Bidding Scheduler (contests + estimates).
    Bidding,
    /// The Crossflow Baseline (pull + reject-once).
    Baseline,
}

impl Protocol {
    /// The matching allocator.
    pub fn allocator(self) -> Box<dyn Allocator> {
        match self {
            Protocol::Bidding => Box::new(BiddingAllocator::new()),
            Protocol::Baseline => Box::new(BaselineAllocator),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Bidding => "bidding",
            Protocol::Baseline => "baseline",
        }
    }
}

/// One job in a scenario's workload.
#[derive(Debug, Clone, Copy)]
pub struct JobDef {
    /// Virtual arrival second.
    pub at_secs: f64,
    /// Which repository the job scans.
    pub object: u64,
    /// Repository size in bytes.
    pub bytes: u64,
}

/// One scheduled fault in a scenario.
#[derive(Debug, Clone, Copy)]
pub struct FaultDef {
    /// Virtual second of the event.
    pub at_secs: f64,
    /// Affected worker.
    pub worker: u32,
    /// `false` = crash, `true` = recovery.
    pub recovers: bool,
}

/// A fully-specified checker workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name for reports and `repro check` output.
    pub name: &'static str,
    /// Which protocol runs it.
    pub protocol: Protocol,
    /// Cluster size (homogeneous workers).
    pub workers: usize,
    /// The workload. Job *indices* are stable identities: shrinking
    /// passes a subset of indices, and each job keeps its payload.
    pub jobs: Vec<JobDef>,
    /// Crash/recovery schedule.
    pub faults: Vec<FaultDef>,
    /// Whether every job is expected to complete by end of run (false
    /// only for scenarios that legitimately end partial).
    pub expect_all_complete: bool,
}

fn hot_repo_jobs(n: usize, object: u64) -> Vec<JobDef> {
    (0..n)
        .map(|i| JobDef {
            at_secs: i as f64 * 0.5,
            object,
            bytes: 100_000_000,
        })
        .collect()
}

impl Scenario {
    /// The built-in scenario set `repro check` and the tier-1 suite
    /// sweep. Together they exercise contests (ties, backlog), the
    /// Baseline's reject-once routing, crash redistribution with
    /// recovery, and multi-repository locality.
    pub fn builtins() -> Vec<Scenario> {
        let crash_recover = vec![
            FaultDef {
                at_secs: 6.0,
                worker: 0,
                recovers: false,
            },
            FaultDef {
                at_secs: 12.0,
                worker: 0,
                recovers: true,
            },
        ];
        vec![
            Scenario {
                name: "hot_repo_bidding",
                protocol: Protocol::Bidding,
                workers: 3,
                jobs: hot_repo_jobs(12, 1),
                faults: Vec::new(),
                expect_all_complete: true,
            },
            Scenario {
                name: "reject_once_baseline",
                protocol: Protocol::Baseline,
                workers: 3,
                jobs: hot_repo_jobs(12, 1),
                faults: Vec::new(),
                expect_all_complete: true,
            },
            Scenario {
                name: "crash_recovery_bidding",
                protocol: Protocol::Bidding,
                workers: 3,
                jobs: hot_repo_jobs(12, 1),
                faults: crash_recover.clone(),
                expect_all_complete: true,
            },
            Scenario {
                name: "crash_recovery_baseline",
                protocol: Protocol::Baseline,
                workers: 3,
                jobs: hot_repo_jobs(12, 1),
                faults: crash_recover,
                expect_all_complete: true,
            },
            Scenario {
                name: "two_repos_bidding",
                protocol: Protocol::Bidding,
                workers: 4,
                jobs: (0..12)
                    .map(|i| JobDef {
                        at_secs: i as f64 * 0.4,
                        object: 1 + (i % 2) as u64,
                        bytes: 60_000_000,
                    })
                    .collect(),
                faults: Vec::new(),
                expect_all_complete: true,
            },
        ]
    }

    /// Oracle options matching this scenario.
    pub fn oracle_options(&self, strict_reoffer: bool) -> OracleOptions {
        OracleOptions {
            expect_all_complete: self.expect_all_complete,
            strict_reoffer,
            workers: Some(self.workers as u32),
            ..OracleOptions::default()
        }
    }

    /// The fault plan, optionally restricted to the listed workers
    /// (shrinking drops a worker's crash *and* recovery together, so
    /// the schedule stays well-formed).
    pub fn fault_plan(&self, keep_workers: Option<&[u32]>) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            if keep_workers.is_some_and(|ws| !ws.contains(&f.worker)) {
                continue;
            }
            let at = SimTime::from_secs_f64(f.at_secs);
            plan = if f.recovers {
                plan.recover_at(at, WorkerId(f.worker))
            } else {
                plan.crash_at(at, WorkerId(f.worker))
            };
        }
        plan.with_detection_delay(SimDuration::from_secs(2))
    }

    /// Workers that have at least one scheduled fault.
    pub fn faulted_workers(&self) -> Vec<u32> {
        let mut ws: Vec<u32> = self.faults.iter().map(|f| f.worker).collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }

    /// The arrival stream, optionally restricted to the listed job
    /// indices. Payloads carry the original index so a shrunk run's
    /// jobs remain identifiable.
    pub fn arrivals(&self, task: TaskId, keep_jobs: Option<&[usize]>) -> Vec<Arrival> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_jobs.is_none_or(|ks| ks.contains(i)))
            .map(|(i, j)| Arrival {
                at: SimTime::from_secs_f64(j.at_secs),
                spec: JobSpec::scanning(
                    task,
                    ResourceRef {
                        id: ObjectId(j.object),
                        bytes: j.bytes,
                    },
                    Payload::Index(i as u64),
                ),
            })
            .collect()
    }

    /// The [`RunSpec`] for this scenario: ideal control plane, no
    /// noise, no speed learning — protocol behavior only, so the sim
    /// run is exactly reproducible and the threaded run's variability
    /// comes from thread scheduling (plus any chaos) alone.
    pub fn spec(&self, seed: u64, keep_fault_workers: Option<&[u32]>) -> RunSpec {
        RunSpec::builder()
            .workers((0..self.workers).map(|i| {
                WorkerSpec::builder(format!("w{i}"))
                    .net_mbps(10.0)
                    .rw_mbps(100.0)
                    .storage_gb(10.0)
                    .build()
            }))
            .engine(EngineConfig {
                control: ControlPlane::instant(),
                data_latency: SimDuration::ZERO,
                noise: NoiseModel::None,
                ..EngineConfig::default()
            })
            .speed_learning(false)
            .faults(self.fault_plan(keep_fault_workers))
            .trace(true)
            .names("checker", self.name)
            .seed(seed)
            .time_scale(1e-3)
            .build()
    }

    /// One deterministic run on the simulation engine.
    pub fn run_sim(&self, seed: u64) -> RunOutput {
        self.run_sim_with_net(seed, NetFaultPlan::none())
    }

    /// One deterministic run on the simulation engine with a
    /// lossy-link plan armed. The engine samples the plan at its
    /// virtual send instants, so the run — drops, retries, lease
    /// bounces and all — replays exactly from `(seed, plan.seed)`.
    pub fn run_sim_with_net(&self, seed: u64, net: NetFaultPlan) -> RunOutput {
        self.run_sim_faulted(seed, net, MasterFaultPlan::none())
    }

    /// One deterministic run on the simulation engine with lossy links
    /// and/or a master-crash schedule armed. Master crashes are keyed
    /// to log append indices, so this replays exactly from
    /// `(seed, net.seed, master.crash_at)`.
    pub fn run_sim_faulted(
        &self,
        seed: u64,
        net: NetFaultPlan,
        master: MasterFaultPlan,
    ) -> RunOutput {
        let mut spec = self.spec(seed, None);
        spec.engine.netfaults = net;
        spec.engine.master_faults = master;
        let mut session = spec.sim();
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = self.arrivals(task, None);
        session.run_iteration(&mut wf, self.protocol.allocator().as_ref(), arrivals)
    }

    /// One run on the threaded runtime under the given perturbations.
    pub fn run_threaded(&self, run: &ThreadedRun) -> RunOutput {
        let mut spec = self.spec(run.seed, run.keep_fault_workers.as_deref());
        spec.chaos = run.chaos.clone();
        spec.mutation = run.mutation;
        if let Some(plan) = &run.netfault {
            spec.engine.netfaults = plan.clone();
        }
        if let Some(plan) = &run.master {
            spec.engine.master_faults = plan.clone();
        }
        let mut session = spec.threaded();
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = self.arrivals(task, run.keep_jobs.as_deref());
        session.run_iteration(&mut wf, self.protocol.allocator().as_ref(), arrivals)
    }
}

/// The four independent seeds that replay one federation run exactly:
/// the run seed (per-shard runtime seeds derive from it), the chaos
/// seed (threaded intake perturbation; `None` = deterministic
/// delivery), the net seed (the gossip-loss draw stream), and the
/// membership seed (the churn schedule of every shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FedSeeds {
    /// Per-shard runtime seeds derive from this.
    pub run: u64,
    /// Threaded intake chaos, if armed.
    pub chaos: Option<u64>,
    /// Gossip-loss draw stream.
    pub net: u64,
    /// Seeded membership-churn schedule.
    pub membership: u64,
}

impl FedSeeds {
    /// Deterministic delivery, one root for every axis.
    pub fn plain(root: u64) -> Self {
        FedSeeds {
            run: root,
            chaos: None,
            net: root,
            membership: root,
        }
    }
}

/// A fully-specified federation workload: N masters over disjoint
/// shards, a burst aimed at shard 0 (the overload the spill protocol
/// exists for), plus one warm-up job per peer shard. Like [`Scenario`]
/// this is data — the explorer's federation axis sweeps it across
/// `(run, chaos, net, membership)` seed tuples.
#[derive(Debug, Clone)]
pub struct FedScenario {
    /// Stable name for reports and `repro federate` output.
    pub name: &'static str,
    /// Which protocol every shard master runs.
    pub protocol: Protocol,
    /// Number of shards (masters).
    pub shards: usize,
    /// Workers per shard, *excluding* the churn spare: when `churn` is
    /// on, each shard gets one extra deferred worker that joins
    /// mid-run.
    pub workers_per_shard: usize,
    /// Spill threshold in virtual seconds (`f64::INFINITY` = the
    /// single-master baseline).
    pub spill_threshold_secs: f64,
    /// Seeded pairwise gossip-exchange loss probability.
    pub gossip_loss: f64,
    /// Jobs in the shard-0 burst.
    pub jobs: usize,
    /// Seeded elastic-membership churn (join + drain, and with enough
    /// workers a removal) on every shard.
    pub churn: bool,
}

impl FedScenario {
    /// The built-in federation axis: shard count × spill threshold ×
    /// membership churn, both protocols represented.
    pub fn builtins() -> Vec<FedScenario> {
        vec![
            FedScenario {
                name: "fed_2shard_spill",
                protocol: Protocol::Bidding,
                shards: 2,
                workers_per_shard: 2,
                spill_threshold_secs: 10.0,
                gossip_loss: 0.0,
                jobs: 16,
                churn: false,
            },
            FedScenario {
                name: "fed_2shard_nospill",
                protocol: Protocol::Baseline,
                shards: 2,
                workers_per_shard: 2,
                spill_threshold_secs: f64::INFINITY,
                gossip_loss: 0.0,
                jobs: 16,
                churn: false,
            },
            FedScenario {
                name: "fed_4shard_spill",
                protocol: Protocol::Bidding,
                shards: 4,
                workers_per_shard: 2,
                spill_threshold_secs: 8.0,
                gossip_loss: 0.0,
                jobs: 20,
                churn: false,
            },
            FedScenario {
                name: "fed_4shard_churn",
                protocol: Protocol::Bidding,
                shards: 4,
                workers_per_shard: 3,
                spill_threshold_secs: 8.0,
                gossip_loss: 0.0,
                jobs: 20,
                churn: true,
            },
            FedScenario {
                name: "fed_2shard_lossy_gossip_churn",
                protocol: Protocol::Baseline,
                shards: 2,
                workers_per_shard: 3,
                spill_threshold_secs: 10.0,
                gossip_loss: 0.3,
                jobs: 16,
                churn: true,
            },
        ]
    }

    /// Workers actually present in one shard's list (the churn spare
    /// is deferred but listed).
    pub fn shard_width(&self) -> usize {
        self.workers_per_shard + usize::from(self.churn)
    }

    /// The seeded churn schedule of one shard: the spare (last) worker
    /// joins early, worker 0 drains mid-run, and with at least three
    /// base workers, worker 1 is administratively removed late. Event
    /// times derive from `membership_seed` and the shard index, so one
    /// seed replays the whole federation's churn.
    pub fn membership_plan(&self, shard: usize, membership_seed: u64) -> MembershipPlan {
        if !self.churn {
            return MembershipPlan::none();
        }
        let mut rng = crossbid_simcore::SeedSequence::new(membership_seed).stream(shard as u64);
        let spare = WorkerId((self.shard_width() - 1) as u32);
        let mut plan = MembershipPlan::new()
            .join_at(SimTime::from_secs_f64(rng.uniform(2.0, 6.0)), spare)
            .drain_at(SimTime::from_secs_f64(rng.uniform(6.0, 10.0)), WorkerId(0));
        if self.workers_per_shard >= 3 {
            plan = plan.remove_at(SimTime::from_secs_f64(rng.uniform(10.0, 14.0)), WorkerId(1));
        }
        plan
    }

    /// The federation spec for one seed tuple. Ideal control plane, no
    /// noise, no speed learning — like [`Scenario::spec`], protocol
    /// behavior only.
    pub fn spec(&self, runtime: FedRuntimeKind, seeds: FedSeeds) -> FederationSpec {
        let shards = (0..self.shards)
            .map(|s| {
                ShardSpec::new(
                    (0..self.shard_width())
                        .map(|i| {
                            WorkerSpec::builder(format!("s{s}w{i}"))
                                .net_mbps(10.0)
                                .rw_mbps(100.0)
                                .storage_gb(10.0)
                                .build()
                        })
                        .collect(),
                )
                .faults(Faults::new().membership(self.membership_plan(s, seeds.membership)))
            })
            .collect();
        let mut spec = FederationSpec::new(shards);
        spec.spill_threshold_secs = self.spill_threshold_secs;
        spec.gossip_period_secs = 2.0;
        spec.gossip_loss = self.gossip_loss;
        spec.spill_latency_secs = 0.5;
        spec.seed = seeds.run;
        spec.net_seed = seeds.net;
        spec.runtime = runtime;
        spec.chaos = seeds.chaos.map(ChaosConfig::aggressive);
        spec.engine = EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        };
        spec
    }

    /// The arrival stream: the shard-0 burst over three hot
    /// repositories, plus one warm-up job per peer shard so every
    /// master has local activity to interleave with spill-ins.
    pub fn fed_arrivals(&self) -> Vec<FedArrival> {
        let mut arrivals: Vec<FedArrival> = (0..self.jobs)
            .map(|i| FedArrival {
                at: SimTime::from_secs_f64(i as f64 * 0.5),
                home: ShardId(0),
                spec: JobSpec::scanning(
                    TaskId(0),
                    ResourceRef {
                        id: ObjectId(1 + (i % 3) as u64),
                        bytes: 100_000_000,
                    },
                    Payload::Index(i as u64),
                ),
            })
            .collect();
        for s in 1..self.shards {
            arrivals.push(FedArrival {
                at: SimTime::from_secs(1),
                home: ShardId(s as u16),
                spec: JobSpec::scanning(
                    TaskId(0),
                    ResourceRef {
                        id: ObjectId(100 + s as u64),
                        bytes: 50_000_000,
                    },
                    Payload::Index(1000 + s as u64),
                ),
            });
        }
        arrivals
    }

    /// Total jobs across the federation.
    pub fn total_jobs(&self) -> u64 {
        (self.jobs + self.shards - 1) as u64
    }

    /// One federation run under the given seed tuple and mutation.
    pub fn run(
        &self,
        runtime: FedRuntimeKind,
        seeds: FedSeeds,
        mutation: FederationMutation,
    ) -> FederationOutput {
        let mut spec = self.spec(runtime, seeds);
        spec.mutation = mutation;
        run_federation(
            &spec,
            self.fed_arrivals(),
            self.protocol.allocator().as_ref(),
            |_| {
                let mut wf = Workflow::new();
                wf.add_sink("scan");
                wf
            },
        )
    }

    /// Oracle options for the merged federation-wide log (worker ids
    /// are shard-qualified, so the per-shard bound does not apply).
    pub fn merged_oracle_options(&self) -> OracleOptions {
        OracleOptions {
            expect_all_complete: true,
            strict_reoffer: false,
            workers: None,
            federated: true,
        }
    }

    /// Oracle options for one shard's own (augmented) log.
    pub fn shard_oracle_options(&self) -> OracleOptions {
        OracleOptions {
            expect_all_complete: true,
            strict_reoffer: false,
            workers: Some(self.shard_width() as u32),
            federated: false,
        }
    }
}

/// A fully-specified atomizer workload: a stream of structured DAG
/// jobs (from [`DagConfig`]), an optional deliberately slow worker,
/// and the speculation knobs. Like [`Scenario`] this is data — the
/// DAG explorer sweeps it across run seeds on either runtime, and a
/// failing seed *is* the repro (DAG runs have nothing to shrink:
/// tasks are structurally entangled through their precedence edges).
#[derive(Debug, Clone)]
pub struct DagScenario {
    /// Stable name for reports and `repro atomize` output.
    pub name: &'static str,
    /// Which allocation protocol places the task jobs.
    pub protocol: Protocol,
    /// Cluster size.
    pub workers: usize,
    /// `(index, cpu multiple)` — the deliberate straggler, if any.
    pub slow_worker: Option<(usize, f64)>,
    /// DAG shape generator.
    pub config: DagConfig,
    /// Number of DAG arrivals.
    pub dags: usize,
    /// Speculation knobs for the run.
    pub atomize: AtomizeConfig,
}

impl DagScenario {
    /// The built-in DAG axis: a straggler-rescue scenario (push
    /// scheduling onto a slow worker, speculation must fire) and a
    /// skewed-reducer scenario (bidding over map outputs, gating under
    /// wide fan-in).
    pub fn builtins() -> Vec<DagScenario> {
        vec![
            DagScenario {
                name: "dag_straggler",
                protocol: Protocol::Baseline,
                workers: 3,
                slow_worker: Some((2, 40.0)),
                config: DagConfig::RepoSplit {
                    shards: 8,
                    repo_mb: 100,
                    tail_alpha: 1.5,
                },
                dags: 2,
                atomize: AtomizeConfig {
                    spec_factor: 2.0,
                    spec_check_secs: 2.0,
                    min_completed_for_spec: 3,
                    ..AtomizeConfig::default()
                },
            },
            DagScenario {
                name: "dag_skewed_reduce",
                protocol: Protocol::Bidding,
                workers: 4,
                slow_worker: None,
                config: DagConfig::MapReduceSkew {
                    maps: 6,
                    reduces: 3,
                    skew_factor: 8.0,
                },
                dags: 2,
                atomize: AtomizeConfig::default(),
            },
        ]
    }

    /// Effective task completions a clean run must produce.
    pub fn expected_tasks(&self) -> u64 {
        (self.config.tasks_per_dag() * self.dags) as u64
    }

    /// The DAG arrival stream (deterministic in `seed`).
    pub fn arrivals(&self, seed: u64, task: TaskId) -> Vec<Arrival> {
        self.config.generate(seed, self.dags, task, 5.0)
    }

    /// Oracle options matching this scenario. The DAG invariants
    /// (gating, per-task conservation, at-most-one effective
    /// completion, no orphaned stage) are always on — they arm
    /// themselves on the first `TaskOffer` in the log.
    pub fn oracle_options(&self) -> OracleOptions {
        OracleOptions {
            expect_all_complete: true,
            strict_reoffer: false,
            workers: Some(self.workers as u32),
            ..OracleOptions::default()
        }
    }

    /// Speculation knobs with a mutation's sabotage applied. The sim
    /// engine is mutation-agnostic, so the scenario layer arms the
    /// equivalent atomize flags directly; the threaded runtime maps
    /// the mutation itself (under the `protocol-mutation` feature).
    fn mutated_atomize(&self, mutation: ProtocolMutation) -> AtomizeConfig {
        let mut a = self.atomize;
        a.release_all |= mutation == ProtocolMutation::OfferBeforePredecessor;
        a.double_speculate |= mutation == ProtocolMutation::DoubleSpeculate;
        a
    }

    /// The [`RunSpec`]: ideal control plane, no noise, no speed
    /// learning — like [`Scenario::spec`], protocol behavior only.
    fn spec(&self, seed: u64, atomize: AtomizeConfig) -> RunSpec {
        RunSpec::builder()
            .workers((0..self.workers).map(|i| {
                let mut b = WorkerSpec::builder(format!("w{i}"))
                    .net_mbps(10.0)
                    .rw_mbps(100.0)
                    .storage_gb(10.0);
                if let Some((slow, factor)) = self.slow_worker {
                    if slow == i {
                        b = b.cpu_factor(factor);
                    }
                }
                b.build()
            }))
            .engine(EngineConfig {
                control: ControlPlane::instant(),
                data_latency: SimDuration::ZERO,
                noise: NoiseModel::None,
                atomize,
                ..EngineConfig::default()
            })
            .speed_learning(false)
            .trace(true)
            .names("checker", self.name)
            .seed(seed)
            .time_scale(1e-3)
            .build()
    }

    /// One deterministic run on the simulation engine.
    pub fn run_sim(&self, seed: u64, mutation: ProtocolMutation) -> RunOutput {
        let spec = self.spec(seed, self.mutated_atomize(mutation));
        let mut session = spec.sim();
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = self.arrivals(seed, task);
        session.run_iteration(&mut wf, self.protocol.allocator().as_ref(), arrivals)
    }

    /// One run on the threaded runtime. The mutation rides the spec
    /// (it maps onto the atomizer's flags inside the master, feature
    /// permitting).
    pub fn run_threaded(&self, seed: u64, mutation: ProtocolMutation) -> RunOutput {
        let mut spec = self.spec(seed, self.atomize);
        spec.mutation = mutation;
        let mut session = spec.threaded();
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = self.arrivals(seed, task);
        session.run_iteration(&mut wf, self.protocol.allocator().as_ref(), arrivals)
    }
}

/// A fully-specified replicated-data-plane workload: a cluster with a
/// replication factor, a job stream over hot artifacts, an optional
/// crash/recovery schedule and a seeded peer-transfer loss rate. Like
/// [`Scenario`] this is data — the replication explorer sweeps it
/// across `(run, net)` seed tuples on either runtime, and a failing
/// tuple *is* the repro (replica state is globally entangled through
/// the pin/repair protocol, so there is nothing to shrink).
#[derive(Debug, Clone)]
pub struct ReplScenario {
    /// Stable name for reports and `repro replicate` output.
    pub name: &'static str,
    /// Which allocation protocol places the jobs.
    pub protocol: Protocol,
    /// Cluster size (homogeneous workers).
    pub workers: usize,
    /// Replication target factor.
    pub factor: u32,
    /// The workload.
    pub jobs: Vec<JobDef>,
    /// Crash/recovery schedule.
    pub faults: Vec<FaultDef>,
    /// Seeded peer data-transfer loss probability (drives the
    /// retry → degraded-master-fallback path).
    pub peer_drop_prob: f64,
    /// Per-worker store capacity in GB. Small values create the
    /// eviction pressure the pin discipline exists to survive.
    pub storage_gb: f64,
}

fn spaced_jobs(n: usize, objects: u64, spacing: f64) -> Vec<JobDef> {
    (0..n)
        .map(|i| JobDef {
            at_secs: i as f64 * spacing,
            object: 1 + (i as u64 % objects),
            bytes: 100_000_000,
        })
        .collect()
}

impl ReplScenario {
    /// The built-in replication axis: factor × holder crash × peer
    /// loss × eviction pressure, both protocols represented.
    pub fn builtins() -> Vec<ReplScenario> {
        let crash_recover = vec![
            FaultDef {
                at_secs: 21.0,
                worker: 0,
                recovers: false,
            },
            FaultDef {
                at_secs: 40.0,
                worker: 0,
                recovers: true,
            },
        ];
        vec![
            ReplScenario {
                name: "repl_f2_crash",
                protocol: Protocol::Bidding,
                workers: 4,
                factor: 2,
                jobs: spaced_jobs(12, 2, 2.0),
                faults: crash_recover.clone(),
                peer_drop_prob: 0.0,
                storage_gb: 10.0,
            },
            ReplScenario {
                name: "repl_f3_lossy",
                protocol: Protocol::Bidding,
                workers: 4,
                factor: 3,
                jobs: spaced_jobs(12, 2, 2.0),
                faults: Vec::new(),
                peer_drop_prob: 0.5,
                storage_gb: 10.0,
            },
            ReplScenario {
                name: "repl_f2_lossy_crash_baseline",
                protocol: Protocol::Baseline,
                workers: 4,
                factor: 2,
                jobs: spaced_jobs(12, 2, 2.0),
                faults: crash_recover,
                peer_drop_prob: 0.3,
                storage_gb: 10.0,
            },
            // One worker, factor 1, three 100 MB artifacts against a
            // two-slot store: the third insert *must* pass through
            // because both residents are pinned sole copies. With the
            // pin discipline sabotaged (`EvictLastCopy`) the insert
            // evicts a last copy instead — the oracle's
            // `EvictedLastCopy` catcher.
            ReplScenario {
                name: "repl_f1_evict_pressure",
                protocol: Protocol::Bidding,
                workers: 1,
                factor: 1,
                jobs: spaced_jobs(3, 3, 2.0),
                faults: Vec::new(),
                peer_drop_prob: 0.0,
                storage_gb: 0.21,
            },
        ]
    }

    /// Oracle options matching this scenario (the replication
    /// invariants arm themselves on the first replica event).
    pub fn oracle_options(&self) -> OracleOptions {
        OracleOptions {
            expect_all_complete: true,
            strict_reoffer: false,
            workers: Some(self.workers as u32),
            ..OracleOptions::default()
        }
    }

    /// The crash/recovery plan.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            let at = SimTime::from_secs_f64(f.at_secs);
            plan = if f.recovers {
                plan.recover_at(at, WorkerId(f.worker))
            } else {
                plan.crash_at(at, WorkerId(f.worker))
            };
        }
        plan.with_detection_delay(SimDuration::from_secs(2))
    }

    /// The replication knobs with a mutation's sabotage applied. The
    /// sim engine is mutation-agnostic, so the scenario layer arms the
    /// equivalent config flags directly; the threaded runtime maps the
    /// mutation itself (under the `protocol-mutation` feature).
    fn replication(&self, mutation: ProtocolMutation) -> ReplicationConfig {
        let mut r = ReplicationConfig::with_factor(self.factor);
        r.peer_drop_prob = self.peer_drop_prob;
        r.skip_repair |= mutation == ProtocolMutation::SkipRepair;
        r.evict_last_copy |= mutation == ProtocolMutation::EvictLastCopy;
        r
    }

    /// The arrival stream.
    pub fn arrivals(&self, task: TaskId) -> Vec<Arrival> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(i, j)| Arrival {
                at: SimTime::from_secs_f64(j.at_secs),
                spec: JobSpec::scanning(
                    task,
                    ResourceRef {
                        id: ObjectId(j.object),
                        bytes: j.bytes,
                    },
                    Payload::Index(i as u64),
                ),
            })
            .collect()
    }

    /// The [`RunSpec`]: ideal control plane, no noise, no speed
    /// learning — like [`Scenario::spec`], protocol behavior only.
    fn spec(&self, seed: u64, replication: ReplicationConfig, net: NetFaultPlan) -> RunSpec {
        let mut spec = RunSpec::builder()
            .workers((0..self.workers).map(|i| {
                WorkerSpec::builder(format!("w{i}"))
                    .net_mbps(10.0)
                    .rw_mbps(100.0)
                    .storage_gb(self.storage_gb)
                    .build()
            }))
            .engine(EngineConfig {
                control: ControlPlane::instant(),
                data_latency: SimDuration::ZERO,
                noise: NoiseModel::None,
                ..EngineConfig::default()
            })
            .speed_learning(false)
            .replication(replication)
            .faults(Faults::new().workers(self.fault_plan()))
            .trace(true)
            .names("checker", self.name)
            .seed(seed)
            .time_scale(1e-3)
            .build();
        spec.engine.netfaults = net;
        spec
    }

    /// One deterministic run on the simulation engine.
    pub fn run_sim(&self, seed: u64, mutation: ProtocolMutation, net: NetFaultPlan) -> RunOutput {
        let spec = self.spec(seed, self.replication(mutation), net);
        let mut session = spec.sim();
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = self.arrivals(task);
        session.run_iteration(&mut wf, self.protocol.allocator().as_ref(), arrivals)
    }

    /// One run on the threaded runtime. The mutation rides the spec
    /// (it maps onto the replication flags inside the master, feature
    /// permitting).
    pub fn run_threaded(
        &self,
        seed: u64,
        mutation: ProtocolMutation,
        net: NetFaultPlan,
    ) -> RunOutput {
        let mut spec = self.spec(seed, self.replication(ProtocolMutation::None), net);
        spec.mutation = mutation;
        let mut session = spec.threaded();
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = self.arrivals(task);
        session.run_iteration(&mut wf, self.protocol.allocator().as_ref(), arrivals)
    }
}

/// Everything that parameterizes one threaded run of a scenario. The
/// explorer mutates `keep_jobs` / `keep_fault_workers` while shrinking
/// and leaves the rest fixed.
#[derive(Debug, Clone)]
pub struct ThreadedRun {
    /// Run seed (drives worker noise streams and bid-delay jitter).
    pub seed: u64,
    /// Delivery-order perturbation, if any.
    pub chaos: Option<ChaosConfig>,
    /// Lossy-link plan (drop/duplicate/delay/partition with the
    /// reliability countermeasures armed), if any.
    pub netfault: Option<NetFaultPlan>,
    /// Master-crash schedule (leader dies at these log append indices;
    /// a standby takes over by log replay), if any.
    pub master: Option<MasterFaultPlan>,
    /// Reintroduced protocol bug, if any.
    pub mutation: ProtocolMutation,
    /// `None` = all jobs; otherwise the job indices to keep.
    pub keep_jobs: Option<Vec<usize>>,
    /// `None` = all faults; otherwise keep only these workers' faults.
    pub keep_fault_workers: Option<Vec<u32>>,
}

impl ThreadedRun {
    /// An unperturbed run of the correct protocol.
    pub fn plain(seed: u64) -> Self {
        ThreadedRun {
            seed,
            chaos: None,
            netfault: None,
            master: None,
            mutation: ProtocolMutation::None,
            keep_jobs: None,
            keep_fault_workers: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::check_log;

    #[test]
    fn builtins_cover_both_protocols_and_faults() {
        let all = Scenario::builtins();
        assert!(all.iter().any(|s| s.protocol == Protocol::Bidding));
        assert!(all.iter().any(|s| s.protocol == Protocol::Baseline));
        assert!(all.iter().any(|s| !s.faults.is_empty()));
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), all.len(), "scenario names are unique");
    }

    #[test]
    fn shrink_subsets_restrict_jobs_and_faults() {
        let sc = &Scenario::builtins()[2]; // crash_recovery_bidding
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        assert_eq!(sc.arrivals(task, None).len(), 12);
        assert_eq!(sc.arrivals(task, Some(&[0, 5, 11])).len(), 3);
        assert_eq!(sc.fault_plan(None).events().len(), 2);
        assert!(sc.fault_plan(Some(&[])).is_empty());
        assert_eq!(sc.faulted_workers(), vec![0]);
    }

    #[test]
    fn fed_builtins_cover_the_axis() {
        let all = FedScenario::builtins();
        assert!(all.iter().any(|s| s.shards == 2));
        assert!(all.iter().any(|s| s.shards >= 4));
        assert!(all.iter().any(|s| s.spill_threshold_secs.is_infinite()));
        assert!(all.iter().any(|s| s.churn));
        assert!(all.iter().any(|s| s.gossip_loss > 0.0));
        assert!(all.iter().any(|s| s.protocol == Protocol::Bidding));
        assert!(all.iter().any(|s| s.protocol == Protocol::Baseline));
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), all.len(), "fed scenario names are unique");
    }

    #[test]
    fn every_fed_builtin_passes_both_oracles_on_the_sim_engine() {
        for sc in FedScenario::builtins() {
            let out = sc.run(
                FedRuntimeKind::Sim,
                FedSeeds::plain(7),
                FederationMutation::None,
            );
            assert_eq!(
                out.jobs_completed,
                sc.total_jobs(),
                "{}: every job completes exactly once",
                sc.name
            );
            let merged = check_log(&out.merged, sc.merged_oracle_options());
            assert!(
                merged.is_empty(),
                "{}: merged violations {merged:?}",
                sc.name
            );
            for (s, shard) in out.shards.iter().enumerate() {
                let v = check_log(&shard.sched_log, sc.shard_oracle_options());
                assert!(v.is_empty(), "{}: shard {s} violations {v:?}", sc.name);
            }
        }
    }

    #[test]
    fn dag_builtins_pass_the_oracle_and_conserve_tasks_on_the_sim_engine() {
        for sc in DagScenario::builtins() {
            let out = sc.run_sim(7, ProtocolMutation::None);
            assert_eq!(
                out.sched_log.task_dones() as u64,
                sc.expected_tasks(),
                "{}: every task effectively completes exactly once",
                sc.name
            );
            let v = check_log(&out.sched_log, sc.oracle_options());
            assert!(v.is_empty(), "{}: sim violations {v:?}", sc.name);
        }
    }

    #[test]
    fn dag_straggler_builtin_actually_speculates() {
        let sc = DagScenario::builtins()
            .into_iter()
            .find(|s| s.name == "dag_straggler")
            .expect("known scenario");
        let out = sc.run_sim(7, ProtocolMutation::None);
        assert!(
            out.sched_log.spec_launches() >= 1,
            "the straggler scenario must exercise speculation"
        );
    }

    #[test]
    fn repl_builtins_cover_the_axis() {
        let all = ReplScenario::builtins();
        assert!(all.iter().any(|s| !s.faults.is_empty()));
        assert!(all.iter().any(|s| s.peer_drop_prob > 0.0));
        assert!(all.iter().any(|s| s.factor >= 3));
        assert!(all.iter().any(|s| s.factor == 1 && s.storage_gb < 1.0));
        assert!(all.iter().any(|s| s.protocol == Protocol::Bidding));
        assert!(all.iter().any(|s| s.protocol == Protocol::Baseline));
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), all.len(), "repl scenario names are unique");
    }

    #[test]
    fn every_repl_builtin_passes_the_oracle_on_the_sim_engine() {
        for sc in ReplScenario::builtins() {
            let out = sc.run_sim(7, ProtocolMutation::None, NetFaultPlan::none());
            assert_eq!(
                out.record.jobs_completed,
                sc.jobs.len() as u64,
                "{}: all jobs complete",
                sc.name
            );
            let v = check_log(&out.sched_log, sc.oracle_options());
            assert!(v.is_empty(), "{}: sim violations {v:?}", sc.name);
        }
    }

    #[test]
    fn every_builtin_passes_the_oracle_on_the_sim_engine() {
        for sc in Scenario::builtins() {
            let out = sc.run_sim(7);
            assert_eq!(
                out.record.jobs_completed,
                sc.jobs.len() as u64,
                "{}: all jobs complete",
                sc.name
            );
            let v = check_log(&out.sched_log, sc.oracle_options(false));
            assert!(v.is_empty(), "{}: sim violations {v:?}", sc.name);
        }
    }
}
