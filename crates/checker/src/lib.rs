//! # crossbid-checker
//!
//! The correctness backstop for both crossflow runtimes: a **protocol
//! invariant oracle** plus a **controlled-interleaving explorer**.
//!
//! The paper's protocols make conservation promises — every submitted
//! job completes exactly once or is accounted to a crash, a contested
//! job goes only to a worker that bid before the contest closed,
//! redistribution reclaims only from the dead (§5, §6.2) — but
//! neither runtime *checks* them; they just behave. This crate closes
//! the loop:
//!
//! * [`oracle`] is a pure state machine over the shared control-plane
//!   event log ([`crossbid_crossflow::SchedLog`], also reconstructible
//!   from an exported JSONL stream). It knows nothing about either
//!   runtime's internals, so the same invariants hold the simulation
//!   engine and the threaded runtime to one standard.
//! * [`scenario`] defines small, fully-specified workloads as *data*,
//!   so a failing one can be shrunk mechanically.
//! * [`explorer`] sweeps seeded message-delivery interleavings of the
//!   threaded runtime (via [`crossbid_crossflow::ChaosConfig`]), runs
//!   the oracle after every run, cross-checks conservation counters
//!   against the deterministic simulation, and on failure shrinks to
//!   a minimal scenario and prints the seed plus the recorded delivery
//!   schedule — a replayable repro.
//!
//! The checker validates *itself* through
//! [`crossbid_crossflow::ProtocolMutation`]: each variant
//! re-introduces one protocol bug fixed in PR 1 (behind the
//! `protocol-mutation` cargo feature of `crossbid-crossflow`), and the
//! test suite asserts the explorer finds a violation for every one.

pub mod explorer;
pub mod oracle;
pub mod scenario;

pub use explorer::{
    explore, explore_builtins, explore_dag, explore_dag_builtins, explore_federation,
    explore_federation_builtins, explore_replication, explore_replication_builtins,
    DagExploreConfig, DagExploreReport, DagFailure, ExploreConfig, ExploreReport, Failure,
    FedExploreConfig, FedExploreReport, FedFailure, ReplExploreConfig, ReplExploreReport,
    ReplFailure,
};
pub use oracle::{check_log, Oracle, OracleOptions, Violation};
pub use scenario::{
    DagScenario, FaultDef, FedScenario, FedSeeds, JobDef, Protocol, ReplScenario, Scenario,
    ThreadedRun,
};
