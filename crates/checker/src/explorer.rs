//! The controlled-interleaving explorer.
//!
//! One threaded run explores one interleaving of the protocol
//! messages. The explorer sweeps many: for each iteration it derives a
//! fresh chaos seed, runs the scenario on the threaded runtime with
//! the intake perturbed ([`ChaosConfig`]), feeds the resulting
//! control-plane log to the invariant [`oracle`](crate::oracle), and
//! cross-checks conservation counters against one deterministic run on
//! the simulation engine. On a violation it *shrinks*: greedily drops
//! jobs, then whole workers' fault schedules, keeping each removal
//! only if the violation still reproduces, and reports the minimal
//! scenario together with the chaos seed and the recorded delivery
//! schedule — everything needed to replay the failure.
//!
//! The threaded runtime is genuinely nondeterministic, so
//! "reproduces" means "within a few attempts under the same seeds";
//! the shrinker is conservative and keeps anything it cannot confirm
//! removable.

use crossbid_crossflow::{
    ChaosConfig, FedRuntimeKind, FederationMutation, MasterFaultPlan, NetFaultPlan,
    ProtocolMutation, RunOutput, WorkerId,
};
use crossbid_simcore::{SeedSequence, SimTime};

use crate::oracle::{check_log, Violation};
use crate::scenario::{DagScenario, FedScenario, FedSeeds, ReplScenario, Scenario, ThreadedRun};

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Interleavings (threaded runs) to explore per scenario.
    pub iters: u32,
    /// Root seed; per-iteration run and chaos seeds derive from it.
    pub base_seed: u64,
    /// Reintroduced protocol bug, if any (checker self-validation;
    /// requires the `protocol-mutation` cargo feature).
    pub mutation: ProtocolMutation,
    /// Perturb message delivery (hold/reorder/duplicate/corrupt).
    pub chaos: bool,
    /// Make the links lossy (drop/duplicate/delay plus a timed
    /// partition window) with the reliability countermeasures armed;
    /// per-iteration net seeds derive from `base_seed`.
    pub netfault: bool,
    /// Crash the master at a seeded log append index each iteration
    /// (bounded by a reference sim run's log length, so the crash
    /// lands mid-protocol); the elected standby must finish the
    /// scenario with exactly-once effects.
    pub master_crash: bool,
    /// Enforce the Baseline's reject-once re-offer routing. Only sound
    /// without chaos (reordering legitimizes re-offers), so the
    /// explorer ignores it whenever `chaos` is on.
    pub strict_reoffer: bool,
    /// Cross-check conservation counters against one deterministic
    /// simulation run of the same scenario.
    pub parity: bool,
    /// Shrink attempts per removal candidate (the threaded runtime is
    /// nondeterministic; a violation counts as reproduced if any
    /// attempt shows one).
    pub repro_attempts: u32,
}

impl ExploreConfig {
    /// A quick sweep of the correct protocol under chaos.
    pub fn quick(iters: u32, base_seed: u64) -> Self {
        ExploreConfig {
            iters,
            base_seed,
            mutation: ProtocolMutation::None,
            chaos: true,
            netfault: false,
            master_crash: false,
            strict_reoffer: false,
            parity: true,
            repro_attempts: 3,
        }
    }

    /// Strict-mode sweep without chaos: deterministic delivery, plus
    /// the Baseline re-offer routing invariant.
    pub fn strict(iters: u32, base_seed: u64) -> Self {
        ExploreConfig {
            iters,
            base_seed,
            mutation: ProtocolMutation::None,
            chaos: false,
            netfault: false,
            master_crash: false,
            strict_reoffer: true,
            parity: true,
            repro_attempts: 3,
        }
    }

    /// A lossy-network sweep: chaos *and* link faults together, the
    /// harshest delivery environment the reliability layer must
    /// survive with exactly-once effects.
    pub fn netfault(iters: u32, base_seed: u64) -> Self {
        ExploreConfig {
            netfault: true,
            ..ExploreConfig::quick(iters, base_seed)
        }
    }

    /// The master-crash sweep: each iteration kills the leader at a
    /// seeded decision-log index, crossed with lossy links, so the
    /// elected standby inherits in-flight contests, unacked
    /// assignments and pending retries — and must still finish every
    /// job exactly once.
    pub fn failover(iters: u32, base_seed: u64) -> Self {
        ExploreConfig {
            master_crash: true,
            netfault: true,
            ..ExploreConfig::quick(iters, base_seed)
        }
    }

    fn effective_strict_reoffer(&self) -> bool {
        self.strict_reoffer && !self.chaos
    }
}

/// A minimized failing interleaving.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Iteration index at which the violation first appeared.
    pub iteration: u32,
    /// Run seed of the minimal repro.
    pub run_seed: u64,
    /// Chaos seed of the minimal repro (same as `run_seed` derivation;
    /// `None` when chaos was off).
    pub chaos_seed: Option<u64>,
    /// Net-fault seed of the minimal repro (`None` when the links were
    /// reliable). Together with `run_seed`, `chaos_seed` and
    /// `crash_index` this is the full replay tuple.
    pub net_seed: Option<u64>,
    /// Log append index at which the master was crashed (`None` when
    /// the master-crash axis was off).
    pub crash_index: Option<u64>,
    /// Violations observed in the minimal repro.
    pub violations: Vec<Violation>,
    /// Job indices of the minimal repro.
    pub kept_jobs: Vec<usize>,
    /// Workers whose fault schedules the minimal repro still needs.
    pub kept_fault_workers: Vec<u32>,
    /// The recorded delivery schedule of the minimal failing run
    /// (empty when chaos was off).
    pub schedule: String,
}

/// Result of exploring one scenario.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Protocol name.
    pub protocol: String,
    /// Interleavings actually run (stops early on failure).
    pub iterations_run: u32,
    /// Master failovers observed across the sweep (only nonzero when
    /// the master-crash axis is armed; a sweep in which the seeded
    /// crash indices all landed past the end of the run proves
    /// nothing, so `repro failover` surfaces this count).
    pub failovers_observed: u64,
    /// Conservation mismatches against the simulation run.
    pub parity_mismatches: Vec<String>,
    /// The minimized failure, if any iteration violated an invariant.
    pub failure: Option<Failure>,
}

impl ExploreReport {
    /// No violations and no parity mismatches.
    pub fn passed(&self) -> bool {
        self.failure.is_none() && self.parity_mismatches.is_empty()
    }

    /// Human-readable report; on failure this is the full repro
    /// recipe (seed + minimal scenario + delivery schedule).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} [{}]: {} interleaving(s)",
            self.scenario, self.protocol, self.iterations_run
        );
        if self.passed() {
            if self.failovers_observed > 0 {
                out.push_str(&format!(
                    " — ok ({} failover(s) survived)\n",
                    self.failovers_observed
                ));
            } else {
                out.push_str(" — ok\n");
            }
            return out;
        }
        out.push('\n');
        for m in &self.parity_mismatches {
            out.push_str(&format!("  parity: {m}\n"));
        }
        if let Some(f) = &self.failure {
            out.push_str(&format!(
                "  VIOLATION at iteration {} (run seed {}, chaos seed {}, net seed {}, crash index {})\n",
                f.iteration,
                f.run_seed,
                f.chaos_seed.map_or("-".into(), |s| s.to_string()),
                f.net_seed.map_or("-".into(), |s| s.to_string()),
                f.crash_index.map_or("-".into(), |s| s.to_string()),
            ));
            for v in &f.violations {
                out.push_str(&format!("    {v}\n"));
            }
            out.push_str(&format!(
                "  minimal repro: jobs {:?}, faulted workers {:?}\n",
                f.kept_jobs, f.kept_fault_workers
            ));
            if !f.schedule.is_empty() {
                out.push_str("  delivery schedule of the minimal failing run:\n");
                for line in f.schedule.lines() {
                    out.push_str(&format!("    {line}\n"));
                }
            }
        }
        out
    }
}

/// The per-iteration lossy-link plan: moderate symmetric loss and
/// duplication with small delays, plus one full partition window
/// shorter than the placement-lease horizon, so every scenario must
/// still complete with exactly-once effects.
fn net_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan::lossy(seed, 0.15, 0.05).with_partition(
        None::<WorkerId>,
        SimTime::from_secs_f64(2.0),
        SimTime::from_secs_f64(4.0),
    )
}

/// One attempt: run + oracle. Returns the output and any violations.
fn attempt(
    sc: &Scenario,
    cfg: &ExploreConfig,
    run: &ThreadedRun,
) -> (RunOutput, Vec<Violation>, String) {
    let (chaos, log) = match &run.chaos {
        Some(c) => {
            let (c, h) = c.clone().with_delivery_log();
            (Some(c), Some(h))
        }
        None => (None, None),
    };
    let run = ThreadedRun {
        chaos,
        ..run.clone()
    };
    let out = sc.run_threaded(&run);
    let violations = check_log(
        &out.sched_log,
        sc.oracle_options(cfg.effective_strict_reoffer()),
    );
    let schedule = log.map(|h| h.lock().render()).unwrap_or_default();
    (out, violations, schedule)
}

/// Does the violation reproduce under this (shrunk) run? Retries
/// because the threaded runtime is nondeterministic.
fn reproduces(sc: &Scenario, cfg: &ExploreConfig, run: &ThreadedRun) -> bool {
    (0..cfg.repro_attempts.max(1)).any(|_| !attempt(sc, cfg, run).1.is_empty())
}

/// Greedy delta-debugging: drop jobs one at a time, then whole
/// workers' fault schedules, keeping each removal only if the
/// violation still reproduces.
fn shrink(sc: &Scenario, cfg: &ExploreConfig, seed_run: &ThreadedRun) -> (Vec<usize>, Vec<u32>) {
    let mut jobs: Vec<usize> = (0..sc.jobs.len()).collect();
    for candidate in (0..sc.jobs.len()).rev() {
        if jobs.len() == 1 {
            break;
        }
        let trial: Vec<usize> = jobs.iter().copied().filter(|j| *j != candidate).collect();
        if trial.len() < jobs.len()
            && reproduces(
                sc,
                cfg,
                &ThreadedRun {
                    keep_jobs: Some(trial.clone()),
                    ..seed_run.clone()
                },
            )
        {
            jobs = trial;
        }
    }
    let mut fault_workers = sc.faulted_workers();
    for candidate in sc.faulted_workers() {
        let trial: Vec<u32> = fault_workers
            .iter()
            .copied()
            .filter(|w| *w != candidate)
            .collect();
        if trial.len() < fault_workers.len()
            && reproduces(
                sc,
                cfg,
                &ThreadedRun {
                    keep_jobs: Some(jobs.clone()),
                    keep_fault_workers: Some(trial.clone()),
                    ..seed_run.clone()
                },
            )
        {
            fault_workers = trial;
        }
    }
    (jobs, fault_workers)
}

/// Sweep `cfg.iters` interleavings of `sc` on the threaded runtime.
/// Stops at (and shrinks) the first violation.
pub fn explore(sc: &Scenario, cfg: &ExploreConfig) -> ExploreReport {
    let mut report = ExploreReport {
        scenario: sc.name.to_string(),
        protocol: sc.protocol.name().to_string(),
        iterations_run: 0,
        failovers_observed: 0,
        parity_mismatches: Vec::new(),
        failure: None,
    };
    // One deterministic reference run for conservation parity; the
    // master-crash axis also uses its log length to bound the seeded
    // crash indices (the threaded log has the same order of magnitude,
    // so an index drawn from the first half reliably fires mid-run).
    let sim = (cfg.parity || cfg.master_crash).then(|| sc.run_sim(cfg.base_seed));
    let crash_bound = cfg
        .master_crash
        .then(|| (sim.as_ref().map_or(0, |s| s.sched_log.len() as u64) / 2).max(2));
    let seeds = SeedSequence::new(cfg.base_seed);
    for i in 0..cfg.iters {
        let run_seed = seeds.seed_for(i as u64);
        let net_seed = cfg.netfault.then(|| seeds.seed_for(0x4E37_0000 + i as u64));
        let crash_index = crash_bound.map(|b| 1 + seeds.seed_for(0xFA11_0000 + i as u64) % b);
        let run = ThreadedRun {
            seed: run_seed,
            chaos: cfg.chaos.then(|| ChaosConfig::aggressive(run_seed)),
            netfault: net_seed.map(net_plan),
            master: crash_index.map(|ix| MasterFaultPlan::new().crash_at(ix)),
            mutation: cfg.mutation,
            keep_jobs: None,
            keep_fault_workers: None,
        };
        let (out, violations, schedule) = attempt(sc, cfg, &run);
        report.iterations_run = i + 1;
        report.failovers_observed += out.sched_log.failovers() as u64;
        if let Some(sim) = &sim {
            for (what, simv, thrv) in [
                (
                    "jobs_completed",
                    sim.record.jobs_completed,
                    out.record.jobs_completed,
                ),
                (
                    "submissions",
                    sim.sched_log.submissions() as u64,
                    out.sched_log.submissions() as u64,
                ),
                (
                    "completions",
                    sim.sched_log.completions() as u64,
                    out.sched_log.completions() as u64,
                ),
            ] {
                if simv != thrv {
                    report
                        .parity_mismatches
                        .push(format!("iteration {i}: {what} sim={simv} threaded={thrv}"));
                }
            }
        }
        if !violations.is_empty() {
            let (kept_jobs, kept_fault_workers) = shrink(sc, cfg, &run);
            // Re-run the minimal scenario to capture its schedule and
            // violations; fall back to the original capture if the
            // nondeterminism refuses to cooperate one more time.
            let minimal = ThreadedRun {
                keep_jobs: Some(kept_jobs.clone()),
                keep_fault_workers: Some(kept_fault_workers.clone()),
                ..run.clone()
            };
            let (mut min_violations, mut min_schedule) = (violations, schedule);
            for _ in 0..cfg.repro_attempts.max(1) {
                let (_, v, s) = attempt(sc, cfg, &minimal);
                if !v.is_empty() {
                    (min_violations, min_schedule) = (v, s);
                    break;
                }
            }
            report.failure = Some(Failure {
                iteration: i,
                run_seed,
                chaos_seed: cfg.chaos.then_some(run_seed),
                net_seed,
                crash_index,
                violations: min_violations,
                kept_jobs,
                kept_fault_workers,
                schedule: min_schedule,
            });
            break;
        }
    }
    report
}

/// Explore every built-in scenario; returns one report per scenario.
pub fn explore_builtins(cfg: &ExploreConfig) -> Vec<ExploreReport> {
    Scenario::builtins()
        .iter()
        .map(|sc| explore(sc, cfg))
        .collect()
}

/// Parameters of the federation exploration axis.
#[derive(Debug, Clone)]
pub struct FedExploreConfig {
    /// Seed tuples to sweep per scenario.
    pub iters: u32,
    /// Root seed; the per-iteration `(run, chaos, net, membership)`
    /// tuples derive from it on independent streams.
    pub base_seed: u64,
    /// Execute the shards on real threads (with intake chaos armed)
    /// instead of the deterministic sim.
    pub runtime: FedRuntimeKind,
    /// Reintroduced hand-off bug, if any (checker self-validation).
    pub mutation: FederationMutation,
}

impl FedExploreConfig {
    /// A quick deterministic sweep on the sim runtime.
    pub fn quick(iters: u32, base_seed: u64) -> Self {
        FedExploreConfig {
            iters,
            base_seed,
            runtime: FedRuntimeKind::Sim,
            mutation: FederationMutation::None,
        }
    }

    /// The threaded sweep: every shard master on real threads with
    /// seeded intake chaos.
    pub fn threaded(iters: u32, base_seed: u64) -> Self {
        FedExploreConfig {
            runtime: FedRuntimeKind::Threaded,
            ..FedExploreConfig::quick(iters, base_seed)
        }
    }
}

/// A failing federation run, identified by its full replay tuple. The
/// federation router is deterministic in these seeds, so unlike the
/// single-shard explorer there is nothing to shrink — the tuple *is*
/// the repro.
#[derive(Debug, Clone)]
pub struct FedFailure {
    /// Iteration index at which the violation appeared.
    pub iteration: u32,
    /// The `(run, chaos, net, membership)` replay tuple.
    pub seeds: FedSeeds,
    /// Violations in the merged federation-wide log.
    pub merged_violations: Vec<Violation>,
    /// Per-shard violations, as `(shard, violation)` pairs.
    pub shard_violations: Vec<(usize, Violation)>,
}

/// Result of sweeping one federation scenario.
#[derive(Debug, Clone)]
pub struct FedExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Protocol name.
    pub protocol: String,
    /// Seed tuples actually run (stops early on failure).
    pub iterations_run: u32,
    /// Cross-shard hand-offs observed across the sweep. A spill
    /// scenario whose sweep never spilled proves nothing, so `repro
    /// federate` surfaces this count.
    pub spills_observed: u64,
    /// Elastic-membership events observed in the merged logs (joins +
    /// drains + removals).
    pub churn_observed: u64,
    /// Conservation mismatches (expected vs observed completions).
    pub parity_mismatches: Vec<String>,
    /// The first failing seed tuple, if any.
    pub failure: Option<FedFailure>,
}

impl FedExploreReport {
    /// No violations and no conservation mismatches.
    pub fn passed(&self) -> bool {
        self.failure.is_none() && self.parity_mismatches.is_empty()
    }

    /// Human-readable report; on failure this is the replay tuple.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} [{}]: {} seed tuple(s), {} spill(s), {} churn event(s)",
            self.scenario,
            self.protocol,
            self.iterations_run,
            self.spills_observed,
            self.churn_observed
        );
        if self.passed() {
            out.push_str(" — ok\n");
            return out;
        }
        out.push('\n');
        for m in &self.parity_mismatches {
            out.push_str(&format!("  parity: {m}\n"));
        }
        if let Some(f) = &self.failure {
            out.push_str(&format!(
                "  VIOLATION at iteration {} (run seed {}, chaos seed {}, net seed {}, membership seed {})\n",
                f.iteration,
                f.seeds.run,
                f.seeds.chaos.map_or("-".into(), |s| s.to_string()),
                f.seeds.net,
                f.seeds.membership,
            ));
            for v in &f.merged_violations {
                out.push_str(&format!("    merged: {v}\n"));
            }
            for (s, v) in &f.shard_violations {
                out.push_str(&format!("    shard {s}: {v}\n"));
            }
        }
        out
    }
}

/// Sweep `cfg.iters` seed tuples of one federation scenario: run the
/// federation, check the merged log with the federated oracle and each
/// shard's augmented log with the single-shard oracle, and cross-check
/// completion conservation. Stops at the first failing tuple.
pub fn explore_federation(sc: &FedScenario, cfg: &FedExploreConfig) -> FedExploreReport {
    let mut report = FedExploreReport {
        scenario: sc.name.to_string(),
        protocol: sc.protocol.name().to_string(),
        iterations_run: 0,
        spills_observed: 0,
        churn_observed: 0,
        parity_mismatches: Vec::new(),
        failure: None,
    };
    let seeds = SeedSequence::new(cfg.base_seed);
    for i in 0..cfg.iters {
        let tuple = FedSeeds {
            run: seeds.seed_for(i as u64),
            chaos: (cfg.runtime == FedRuntimeKind::Threaded)
                .then(|| seeds.seed_for(0xC4A0_0000 + i as u64)),
            net: seeds.seed_for(0x4E37_0000 + i as u64),
            membership: seeds.seed_for(0x4D42_0000 + i as u64),
        };
        let out = sc.run(cfg.runtime, tuple, cfg.mutation);
        report.iterations_run = i + 1;
        report.spills_observed += out.spills.len() as u64;
        report.churn_observed += (out.merged.worker_joins()
            + out.merged.worker_drains()
            + out.merged.worker_removals()) as u64;
        if cfg.mutation == FederationMutation::None && out.jobs_completed != sc.total_jobs() {
            report.parity_mismatches.push(format!(
                "iteration {i}: expected {} completions, observed {}",
                sc.total_jobs(),
                out.jobs_completed
            ));
        }
        let merged_violations = check_log(&out.merged, sc.merged_oracle_options());
        let shard_violations: Vec<(usize, Violation)> = out
            .shards
            .iter()
            .enumerate()
            .flat_map(|(s, o)| {
                check_log(&o.sched_log, sc.shard_oracle_options())
                    .into_iter()
                    .map(move |v| (s, v))
            })
            .collect();
        if !merged_violations.is_empty() || !shard_violations.is_empty() {
            report.failure = Some(FedFailure {
                iteration: i,
                seeds: tuple,
                merged_violations,
                shard_violations,
            });
            break;
        }
    }
    report
}

/// Explore every built-in federation scenario.
pub fn explore_federation_builtins(cfg: &FedExploreConfig) -> Vec<FedExploreReport> {
    FedScenario::builtins()
        .iter()
        .map(|sc| explore_federation(sc, cfg))
        .collect()
}

/// Parameters of the DAG (atomizer) exploration axis.
#[derive(Debug, Clone)]
pub struct DagExploreConfig {
    /// Run seeds to sweep per scenario.
    pub iters: u32,
    /// Root seed; per-iteration run seeds derive from it.
    pub base_seed: u64,
    /// Which runtime executes the sweep.
    pub runtime: FedRuntimeKind,
    /// Reintroduced atomizer bug, if any (checker self-validation).
    pub mutation: ProtocolMutation,
}

impl DagExploreConfig {
    /// A quick deterministic sweep on the sim engine.
    pub fn quick(iters: u32, base_seed: u64) -> Self {
        DagExploreConfig {
            iters,
            base_seed,
            runtime: FedRuntimeKind::Sim,
            mutation: ProtocolMutation::None,
        }
    }

    /// The same sweep on real threads.
    pub fn threaded(iters: u32, base_seed: u64) -> Self {
        DagExploreConfig {
            runtime: FedRuntimeKind::Threaded,
            ..DagExploreConfig::quick(iters, base_seed)
        }
    }
}

/// A failing DAG run. Task jobs are structurally entangled through
/// their precedence edges, so there is nothing to shrink — the
/// `(seed, runtime)` pair is the repro.
#[derive(Debug, Clone)]
pub struct DagFailure {
    /// Iteration index at which the violation appeared.
    pub iteration: u32,
    /// The replaying run seed.
    pub seed: u64,
    /// Oracle violations in the run's scheduler log.
    pub violations: Vec<Violation>,
}

/// Result of sweeping one DAG scenario.
#[derive(Debug, Clone)]
pub struct DagExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Protocol name.
    pub protocol: String,
    /// Which runtime ran the sweep.
    pub runtime: &'static str,
    /// Seeds actually run (stops early on failure).
    pub iterations_run: u32,
    /// Speculative launches observed across the sweep. A straggler
    /// scenario whose sweep never speculated proves nothing, so
    /// `repro atomize` surfaces this count.
    pub speculations_observed: u64,
    /// Effective-completion conservation mismatches.
    pub parity_mismatches: Vec<String>,
    /// The first failing seed, if any.
    pub failure: Option<DagFailure>,
}

impl DagExploreReport {
    /// No violations and no conservation mismatches.
    pub fn passed(&self) -> bool {
        self.failure.is_none() && self.parity_mismatches.is_empty()
    }

    /// Human-readable report; on failure this is the replay tuple.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} [{} on {}]: {} seed(s), {} speculative launch(es)",
            self.scenario,
            self.protocol,
            self.runtime,
            self.iterations_run,
            self.speculations_observed
        );
        if self.passed() {
            out.push_str(" — ok\n");
            return out;
        }
        out.push('\n');
        for m in &self.parity_mismatches {
            out.push_str(&format!("  parity: {m}\n"));
        }
        if let Some(f) = &self.failure {
            out.push_str(&format!(
                "  VIOLATION at iteration {} (run seed {} on the {} runtime)\n",
                f.iteration, f.seed, self.runtime,
            ));
            for v in &f.violations {
                out.push_str(&format!("    {v}\n"));
            }
        }
        out
    }
}

/// Sweep `cfg.iters` run seeds of one DAG scenario: run it, feed the
/// scheduler log to the oracle (the DAG invariants arm on the first
/// `TaskOffer`), and cross-check effective-completion conservation.
/// Stops at the first failing seed.
pub fn explore_dag(sc: &DagScenario, cfg: &DagExploreConfig) -> DagExploreReport {
    let mut report = DagExploreReport {
        scenario: sc.name.to_string(),
        protocol: sc.protocol.name().to_string(),
        runtime: match cfg.runtime {
            FedRuntimeKind::Sim => "sim",
            FedRuntimeKind::Threaded => "threaded",
        },
        iterations_run: 0,
        speculations_observed: 0,
        parity_mismatches: Vec::new(),
        failure: None,
    };
    let seeds = SeedSequence::new(cfg.base_seed);
    for i in 0..cfg.iters {
        let seed = seeds.seed_for(i as u64);
        let out = match cfg.runtime {
            FedRuntimeKind::Sim => sc.run_sim(seed, cfg.mutation),
            FedRuntimeKind::Threaded => sc.run_threaded(seed, cfg.mutation),
        };
        report.iterations_run = i + 1;
        report.speculations_observed += out.sched_log.spec_launches() as u64;
        if cfg.mutation == ProtocolMutation::None
            && out.sched_log.task_dones() as u64 != sc.expected_tasks()
        {
            report.parity_mismatches.push(format!(
                "iteration {i}: expected {} effective completions, observed {}",
                sc.expected_tasks(),
                out.sched_log.task_dones()
            ));
        }
        let violations = check_log(&out.sched_log, sc.oracle_options());
        if !violations.is_empty() {
            report.failure = Some(DagFailure {
                iteration: i,
                seed,
                violations,
            });
            break;
        }
    }
    report
}

/// Explore every built-in DAG scenario.
pub fn explore_dag_builtins(cfg: &DagExploreConfig) -> Vec<DagExploreReport> {
    DagScenario::builtins()
        .iter()
        .map(|sc| explore_dag(sc, cfg))
        .collect()
}

/// Parameters of the replication exploration axis.
#[derive(Debug, Clone)]
pub struct ReplExploreConfig {
    /// Seed tuples to sweep per scenario.
    pub iters: u32,
    /// Root seed; per-iteration `(run, net)` tuples derive from it on
    /// independent streams.
    pub base_seed: u64,
    /// Which runtime executes the sweep.
    pub runtime: FedRuntimeKind,
    /// Reintroduced data-plane bug, if any (checker self-validation).
    pub mutation: ProtocolMutation,
    /// Arm lossy links (drop/duplicate/delay plus a timed partition
    /// window) on top of the scenario's own peer-loss rate.
    pub netfault: bool,
}

impl ReplExploreConfig {
    /// A quick deterministic sweep on the sim engine.
    pub fn quick(iters: u32, base_seed: u64) -> Self {
        ReplExploreConfig {
            iters,
            base_seed,
            runtime: FedRuntimeKind::Sim,
            mutation: ProtocolMutation::None,
            netfault: false,
        }
    }

    /// The same sweep on real threads.
    pub fn threaded(iters: u32, base_seed: u64) -> Self {
        ReplExploreConfig {
            runtime: FedRuntimeKind::Threaded,
            ..ReplExploreConfig::quick(iters, base_seed)
        }
    }

    /// A lossy-link sweep: link faults compose with the scenario's
    /// seeded peer-transfer loss, so fetches retry across both.
    pub fn lossy(iters: u32, base_seed: u64) -> Self {
        ReplExploreConfig {
            netfault: true,
            ..ReplExploreConfig::quick(iters, base_seed)
        }
    }
}

/// A failing replication run, identified by its `(run, net)` replay
/// tuple. Replica state is globally entangled through the pin/repair
/// protocol, so there is nothing to shrink — the tuple *is* the repro.
#[derive(Debug, Clone)]
pub struct ReplFailure {
    /// Iteration index at which the violation appeared.
    pub iteration: u32,
    /// The replaying run seed.
    pub run_seed: u64,
    /// Net-fault seed (`None` when the links were reliable).
    pub net_seed: Option<u64>,
    /// Oracle violations in the run's scheduler log.
    pub violations: Vec<Violation>,
}

/// Result of sweeping one replication scenario.
#[derive(Debug, Clone)]
pub struct ReplExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Protocol name.
    pub protocol: String,
    /// Which runtime ran the sweep.
    pub runtime: &'static str,
    /// Seed tuples actually run (stops early on failure).
    pub iterations_run: u32,
    /// Successful peer fetches observed across the sweep. A sweep in
    /// which no worker ever pulled from a replica proves nothing about
    /// the peer path, so `repro replicate` surfaces this count.
    pub peer_fetches_observed: u64,
    /// Fetch retries (lost peer transfers) observed across the sweep.
    pub fetch_retries_observed: u64,
    /// Committed re-replications that completed across the sweep.
    pub repairs_observed: u64,
    /// Completion-conservation mismatches.
    pub parity_mismatches: Vec<String>,
    /// The first failing seed tuple, if any.
    pub failure: Option<ReplFailure>,
}

impl ReplExploreReport {
    /// No violations and no conservation mismatches.
    pub fn passed(&self) -> bool {
        self.failure.is_none() && self.parity_mismatches.is_empty()
    }

    /// Human-readable report; on failure this is the replay tuple.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} [{} on {}]: {} seed tuple(s), {} peer fetch(es), {} retry(ies), {} repair(s)",
            self.scenario,
            self.protocol,
            self.runtime,
            self.iterations_run,
            self.peer_fetches_observed,
            self.fetch_retries_observed,
            self.repairs_observed
        );
        if self.passed() {
            out.push_str(" — ok\n");
            return out;
        }
        out.push('\n');
        for m in &self.parity_mismatches {
            out.push_str(&format!("  parity: {m}\n"));
        }
        if let Some(f) = &self.failure {
            out.push_str(&format!(
                "  VIOLATION at iteration {} (run seed {}, net seed {} on the {} runtime)\n",
                f.iteration,
                f.run_seed,
                f.net_seed.map_or("-".into(), |s| s.to_string()),
                self.runtime,
            ));
            for v in &f.violations {
                out.push_str(&format!("    {v}\n"));
            }
        }
        out
    }
}

/// Sweep `cfg.iters` seed tuples of one replication scenario: run it,
/// feed the scheduler log to the oracle (the replication invariants
/// arm on the first replica event), and cross-check completion
/// conservation. Stops at the first failing tuple.
pub fn explore_replication(sc: &ReplScenario, cfg: &ReplExploreConfig) -> ReplExploreReport {
    let mut report = ReplExploreReport {
        scenario: sc.name.to_string(),
        protocol: sc.protocol.name().to_string(),
        runtime: match cfg.runtime {
            FedRuntimeKind::Sim => "sim",
            FedRuntimeKind::Threaded => "threaded",
        },
        iterations_run: 0,
        peer_fetches_observed: 0,
        fetch_retries_observed: 0,
        repairs_observed: 0,
        parity_mismatches: Vec::new(),
        failure: None,
    };
    let seeds = SeedSequence::new(cfg.base_seed);
    for i in 0..cfg.iters {
        let run_seed = seeds.seed_for(i as u64);
        let net_seed = cfg.netfault.then(|| seeds.seed_for(0x4E37_0000 + i as u64));
        let net = net_seed.map(net_plan).unwrap_or_else(NetFaultPlan::none);
        let out = match cfg.runtime {
            FedRuntimeKind::Sim => sc.run_sim(run_seed, cfg.mutation, net),
            FedRuntimeKind::Threaded => sc.run_threaded(run_seed, cfg.mutation, net),
        };
        report.iterations_run = i + 1;
        report.peer_fetches_observed += out.sched_log.fetch_oks() as u64;
        report.fetch_retries_observed += out.sched_log.fetch_fails() as u64;
        report.repairs_observed += out.sched_log.repair_dones() as u64;
        if cfg.mutation == ProtocolMutation::None
            && out.record.jobs_completed != sc.jobs.len() as u64
        {
            report.parity_mismatches.push(format!(
                "iteration {i}: expected {} completions, observed {}",
                sc.jobs.len(),
                out.record.jobs_completed
            ));
        }
        let violations = check_log(&out.sched_log, sc.oracle_options());
        if !violations.is_empty() {
            report.failure = Some(ReplFailure {
                iteration: i,
                run_seed,
                net_seed,
                violations,
            });
            break;
        }
    }
    report
}

/// Explore every built-in replication scenario.
pub fn explore_replication_builtins(cfg: &ReplExploreConfig) -> Vec<ReplExploreReport> {
    ReplScenario::builtins()
        .iter()
        .map(|sc| explore_replication(sc, cfg))
        .collect()
}
