//! Job arrival processes.
//!
//! Crossflow is a *stream* processing engine: jobs arrive over time
//! rather than as a fixed batch ("Crossflow performs impromptu task
//! allocation as jobs arrive", §4). The arrival process controls the
//! load pressure that separates the schedulers: sparse arrivals let
//! every scheduler wait for the cache owner, dense arrivals force the
//! redundancy trade-off.

use crossbid_simcore::{RngStream, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How jobs enter the master over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All jobs at t = 0 (a batch; what Spark's up-front allocation
    /// assumes).
    Batch,
    /// One job every `interval_secs`.
    Periodic {
        /// Fixed inter-arrival gap in seconds.
        interval_secs: f64,
    },
    /// Poisson process with the given mean inter-arrival time.
    Poisson {
        /// Mean inter-arrival gap in seconds.
        mean_interval_secs: f64,
    },
    /// Bursts of `burst_size` simultaneous jobs every `gap_secs`.
    Bursty {
        /// Jobs per burst.
        burst_size: usize,
        /// Gap between bursts in seconds.
        gap_secs: f64,
    },
    /// Replay recorded arrival offsets (seconds from stream start),
    /// cycling if more jobs are requested than offsets recorded —
    /// trace-driven evaluation against a captured production stream.
    Replay {
        /// Recorded offsets, seconds; must be non-decreasing.
        offsets_secs: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// The default evaluation stream: Poisson arrivals, mean 1.5 s —
    /// sustained overload on a 5-worker cluster, so makespans are
    /// capacity-bound and allocation quality (not arrival spacing)
    /// determines the outcome.
    pub fn evaluation_default() -> Self {
        ArrivalProcess::Poisson {
            mean_interval_secs: 1.5,
        }
    }

    /// Generate `n` arrival instants (non-decreasing).
    pub fn times(&self, n: usize, rng: &mut RngStream) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(n);
        match self {
            ArrivalProcess::Replay { offsets_secs } => {
                debug_assert!(
                    offsets_secs.windows(2).all(|w| w[0] <= w[1]),
                    "replay offsets must be non-decreasing"
                );
                if offsets_secs.is_empty() {
                    out.resize(n, SimTime::ZERO);
                    return out;
                }
                // Cycle through the recorded trace, shifting each lap
                // by the trace's span so time keeps moving forward.
                let span = offsets_secs.last().copied().unwrap_or(0.0).max(0.0);
                for i in 0..n {
                    let lap = (i / offsets_secs.len()) as f64;
                    let off = offsets_secs[i % offsets_secs.len()].max(0.0);
                    out.push(SimTime::from_secs_f64(lap * span + off));
                }
                return out;
            }
            ArrivalProcess::Batch => {
                out.resize(n, SimTime::ZERO);
            }
            &ArrivalProcess::Periodic { interval_secs } => {
                let mut t = SimTime::ZERO;
                for _ in 0..n {
                    out.push(t);
                    t += SimDuration::from_secs_f64(interval_secs.max(0.0));
                }
            }
            &ArrivalProcess::Poisson { mean_interval_secs } => {
                let mut t = SimTime::ZERO;
                for _ in 0..n {
                    out.push(t);
                    t += SimDuration::from_secs_f64(rng.exponential(mean_interval_secs));
                }
            }
            &ArrivalProcess::Bursty {
                burst_size,
                gap_secs,
            } => {
                let burst = burst_size.max(1);
                let mut t = SimTime::ZERO;
                let mut in_burst = 0;
                for _ in 0..n {
                    out.push(t);
                    in_burst += 1;
                    if in_burst == burst {
                        in_burst = 0;
                        t += SimDuration::from_secs_f64(gap_secs.max(0.0));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_all_zero() {
        let mut rng = RngStream::from_seed(0);
        let t = ArrivalProcess::Batch.times(5, &mut rng);
        assert_eq!(t, vec![SimTime::ZERO; 5]);
    }

    #[test]
    fn periodic_spacing() {
        let mut rng = RngStream::from_seed(0);
        let t = ArrivalProcess::Periodic { interval_secs: 2.0 }.times(4, &mut rng);
        assert_eq!(
            t,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(2),
                SimTime::from_secs(4),
                SimTime::from_secs(6)
            ]
        );
    }

    #[test]
    fn poisson_is_monotone_with_roughly_right_mean() {
        let mut rng = RngStream::from_seed(9);
        let t = ArrivalProcess::Poisson {
            mean_interval_secs: 3.0,
        }
        .times(5000, &mut rng);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        let span = t.last().unwrap().as_secs_f64();
        let mean = span / 4999.0;
        assert!((mean - 3.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn bursts_group_arrivals() {
        let mut rng = RngStream::from_seed(0);
        let t = ArrivalProcess::Bursty {
            burst_size: 3,
            gap_secs: 10.0,
        }
        .times(7, &mut rng);
        assert_eq!(t[0], t[2]);
        assert_eq!(t[3], SimTime::from_secs(10));
        assert_eq!(t[5], SimTime::from_secs(10));
        assert_eq!(t[6], SimTime::from_secs(20));
    }

    #[test]
    fn replay_cycles_with_span_shift() {
        let mut rng = RngStream::from_seed(0);
        let p = ArrivalProcess::Replay {
            offsets_secs: vec![0.0, 1.0, 4.0],
        };
        let t = p.times(7, &mut rng);
        assert_eq!(t[0], SimTime::ZERO);
        assert_eq!(t[2], SimTime::from_secs(4));
        // Second lap shifted by the span (4 s).
        assert_eq!(t[3], SimTime::from_secs(4));
        assert_eq!(t[4], SimTime::from_secs(5));
        assert_eq!(t[6], SimTime::from_secs(8));
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_replay_degrades_to_batch() {
        let mut rng = RngStream::from_seed(0);
        let p = ArrivalProcess::Replay {
            offsets_secs: vec![],
        };
        assert_eq!(p.times(3, &mut rng), vec![SimTime::ZERO; 3]);
    }

    #[test]
    fn zero_burst_size_is_clamped() {
        let mut rng = RngStream::from_seed(0);
        let t = ArrivalProcess::Bursty {
            burst_size: 0,
            gap_secs: 1.0,
        }
        .times(3, &mut rng);
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }
}
