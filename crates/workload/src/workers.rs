//! The paper's four worker configurations (§6.3.1), five workers
//! each.
//!
//! Calibration (documented in DESIGN.md §5): the *average* worker has
//! 20 MB/s network and 100 MB/s read/write speed with a 30 GB local
//! store; *fast* is 5× the average, *slow* is a severely throttled
//! instance at one tenth of it — "significantly faster/slower ... in
//! terms of network and computation speed".

use crossbid_crossflow::{WorkerSpec, WorkerSpecBuilder};
use serde::{Deserialize, Serialize};

/// The four evaluated worker configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerConfig {
    /// "All workers have the same, or nearly the same, network and
    /// read/write speeds as well as storage resources."
    AllEqual,
    /// "One worker is significantly faster than the others."
    OneFast,
    /// "One worker is significantly slower than the others."
    OneSlow,
    /// "One slow and one fast worker, while the remaining three have
    /// average download and processing speeds."
    FastSlow,
}

impl WorkerConfig {
    /// All four configurations, in the paper's order.
    pub const ALL: [WorkerConfig; 4] = [
        WorkerConfig::AllEqual,
        WorkerConfig::OneFast,
        WorkerConfig::OneSlow,
        WorkerConfig::FastSlow,
    ];

    /// The paper's cluster size.
    pub const PAPER_WORKER_COUNT: usize = 5;

    /// Stable name used in records and reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkerConfig::AllEqual => "all-equal",
            WorkerConfig::OneFast => "one-fast",
            WorkerConfig::OneSlow => "one-slow",
            WorkerConfig::FastSlow => "fast-slow",
        }
    }

    /// Speed multiplier of the fast preset relative to average.
    pub const FAST_FACTOR: f64 = 5.0;
    /// Speed multiplier of the slow preset relative to average — a
    /// severely throttled instance (the paper's slow node drags whole
    /// Spark stages, implying an order-of-magnitude gap).
    pub const SLOW_FACTOR: f64 = 0.1;

    fn average(name: String) -> WorkerSpecBuilder {
        WorkerSpec::builder(name)
            .net_mbps(20.0)
            .rw_mbps(100.0)
            // A t3.micro-class instance with a ~30 GB EBS volume: big
            // enough that caching pays, small enough that the large
            // all-different workloads still evict.
            .storage_gb(30.0)
    }

    /// Build the worker specs for this configuration with `n` workers
    /// (the paper uses 5; index 0 is the fast worker when present, the
    /// last index is the slow one when present).
    pub fn specs(self, n: usize) -> Vec<WorkerSpec> {
        assert!(n >= 1, "need at least one worker");
        (0..n)
            .map(|i| {
                let name = format!("{}-w{}", self.name(), i);
                let b = Self::average(name);
                let factor = match self {
                    WorkerConfig::AllEqual => 1.0,
                    WorkerConfig::OneFast => {
                        if i == 0 {
                            Self::FAST_FACTOR
                        } else {
                            1.0
                        }
                    }
                    WorkerConfig::OneSlow => {
                        if i == n - 1 {
                            Self::SLOW_FACTOR
                        } else {
                            1.0
                        }
                    }
                    WorkerConfig::FastSlow => {
                        if i == 0 {
                            Self::FAST_FACTOR
                        } else if i == n - 1 {
                            Self::SLOW_FACTOR
                        } else {
                            1.0
                        }
                    }
                };
                b.speed_factor(factor).build()
            })
            .collect()
    }

    /// The paper's 5-worker cluster.
    pub fn paper_specs(self) -> Vec<WorkerSpec> {
        self.specs(Self::PAPER_WORKER_COUNT)
    }
}

impl std::fmt::Display for WorkerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = WorkerConfig::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn all_equal_is_homogeneous() {
        let specs = WorkerConfig::AllEqual.paper_specs();
        assert_eq!(specs.len(), 5);
        for s in &specs {
            assert!((s.net.as_mb_per_sec() - 20.0).abs() < 1e-9);
            assert!((s.rw.as_mb_per_sec() - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn one_fast_has_exactly_one_fast() {
        let specs = WorkerConfig::OneFast.paper_specs();
        let fast: Vec<_> = specs
            .iter()
            .filter(|s| s.net.as_mb_per_sec() > 50.0)
            .collect();
        assert_eq!(fast.len(), 1);
        assert!((specs[0].net.as_mb_per_sec() - 100.0).abs() < 1e-9);
        assert!((specs[0].rw.as_mb_per_sec() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn one_slow_has_exactly_one_slow() {
        let specs = WorkerConfig::OneSlow.paper_specs();
        let slow: Vec<_> = specs
            .iter()
            .filter(|s| s.net.as_mb_per_sec() < 10.0)
            .collect();
        assert_eq!(slow.len(), 1);
        assert!((specs[4].net.as_mb_per_sec() - 2.0).abs() < 1e-9);
        assert!((specs[4].rw.as_mb_per_sec() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fast_slow_has_both_extremes() {
        let specs = WorkerConfig::FastSlow.paper_specs();
        assert!((specs[0].net.as_mb_per_sec() - 100.0).abs() < 1e-9);
        assert!((specs[4].net.as_mb_per_sec() - 2.0).abs() < 1e-9);
        for s in &specs[1..4] {
            assert!((s.net.as_mb_per_sec() - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scales_to_other_cluster_sizes() {
        let specs = WorkerConfig::FastSlow.specs(3);
        assert_eq!(specs.len(), 3);
        assert!(specs[0].net.as_mb_per_sec() > 50.0);
        assert!(specs[2].net.as_mb_per_sec() < 10.0);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        WorkerConfig::AllEqual.specs(0);
    }
}
