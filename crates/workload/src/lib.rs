//! # crossbid-workload
//!
//! Synthetic workload generation matching the paper's evaluation
//! setup (§6.3.1):
//!
//! * [`RepoCatalog`] — repositories "ranging between 1MB and 1GB" in
//!   three size classes;
//! * [`JobConfig`] — the five job configurations (120 jobs each):
//!   `all_diff_equal`, `all_diff_large`, `all_diff_small`,
//!   `80pct_large`, `80pct_small`;
//! * [`WorkerConfig`] — the four worker configurations (5 workers
//!   each): `all-equal`, `one-fast`, `one-slow`, `fast-slow`;
//! * [`ArrivalProcess`] — periodic / Poisson / bursty job streams.
//!
//! All generation is a pure function of a seed.

//! ```
//! use crossbid_crossflow::TaskId;
//! use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};
//!
//! // The paper's `80%_large` configuration: 120 jobs, repetitive
//! // pattern over mostly large repositories.
//! let stream = JobConfig::Pct80Large.generate(
//!     42, JobConfig::PAPER_JOB_COUNT, TaskId(0),
//!     &ArrivalProcess::evaluation_default(),
//! );
//! assert_eq!(stream.len(), 120);
//! assert!(stream.distinct_repos() < 120, "hot repository reused");
//!
//! // The paper's `one-slow` 5-worker cluster.
//! let specs = WorkerConfig::OneSlow.paper_specs();
//! assert_eq!(specs.len(), 5);
//! ```

pub mod arrivals;
pub mod dags;
pub mod jobs;
pub mod mix;
pub mod repos;
pub mod workers;

pub use arrivals::ArrivalProcess;
pub use dags::DagConfig;
pub use jobs::{JobConfig, JobStream};
pub use mix::{JobMix, MixComponent, Repetition};
pub use repos::{RepoCatalog, Repository, SizeClass};
pub use workers::WorkerConfig;
