//! Synthetic repository catalogs.
//!
//! §6.3.1: "repositories can vary in sizes (be small, medium or
//! large, ranging between 1MB and 1GB)". The motivating scenario also
//! mentions ">500MB" as the large-project threshold, which is where we
//! put the large class's lower bound.

use crossbid_simcore::RngStream;
use crossbid_storage::ObjectId;
use serde::{Deserialize, Serialize};

/// Size classes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// "smaller than 50MB" (§4's small-repository experiments):
    /// 1–50 MB.
    Small,
    /// Between the two: 50–500 MB.
    Medium,
    /// "larger than 500MB" (§2): 500 MB–1 GB.
    Large,
}

impl SizeClass {
    /// All classes.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Inclusive byte bounds of this class.
    pub fn bounds(self) -> (u64, u64) {
        match self {
            SizeClass::Small => (1_000_000, 50_000_000),
            SizeClass::Medium => (50_000_001, 500_000_000),
            SizeClass::Large => (500_000_001, 1_000_000_000),
        }
    }

    /// Sample a size uniformly within the class.
    pub fn sample_bytes(self, rng: &mut RngStream) -> u64 {
        let (lo, hi) = self.bounds();
        rng.range_inclusive(lo, hi)
    }

    /// Classify a byte size.
    pub fn of(bytes: u64) -> SizeClass {
        if bytes <= 50_000_000 {
            SizeClass::Small
        } else if bytes <= 500_000_000 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        }
    }
}

/// A synthetic repository: the unit of data locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repository {
    /// Identity (used as the store object id).
    pub id: ObjectId,
    /// Clone size in bytes.
    pub bytes: u64,
}

impl Repository {
    /// The repository's size class.
    pub fn size_class(&self) -> SizeClass {
        SizeClass::of(self.bytes)
    }

    /// As a crossflow resource reference.
    pub fn as_resource(&self) -> crossbid_crossflow::ResourceRef {
        crossbid_crossflow::ResourceRef {
            id: self.id,
            bytes: self.bytes,
        }
    }
}

/// A generated catalog of repositories.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RepoCatalog {
    repos: Vec<Repository>,
}

impl RepoCatalog {
    /// Generate `count` repositories with class weights
    /// `(small, medium, large)`.
    pub fn generate(rng: &mut RngStream, count: usize, weights: (f64, f64, f64)) -> Self {
        let w = [weights.0, weights.1, weights.2];
        let repos = (0..count)
            .map(|i| {
                let class = SizeClass::ALL[rng.weighted_index(&w)];
                Repository {
                    id: ObjectId(i as u64),
                    bytes: class.sample_bytes(rng),
                }
            })
            .collect();
        RepoCatalog { repos }
    }

    /// Build directly from explicit repositories (custom mixes).
    pub fn from_repos(repos: Vec<Repository>) -> Self {
        RepoCatalog { repos }
    }

    /// Equal mix of the three classes.
    pub fn equal_mix(rng: &mut RngStream, count: usize) -> Self {
        Self::generate(rng, count, (1.0, 1.0, 1.0))
    }

    /// Mostly large repositories (the paper's `all_diff_large`
    /// flavour): 70% large, 20% medium, 10% small.
    pub fn mostly_large(rng: &mut RngStream, count: usize) -> Self {
        Self::generate(rng, count, (0.1, 0.2, 0.7))
    }

    /// Mostly small repositories: 70% small, 20% medium, 10% large.
    pub fn mostly_small(rng: &mut RngStream, count: usize) -> Self {
        Self::generate(rng, count, (0.7, 0.2, 0.1))
    }

    /// All repositories.
    pub fn repos(&self) -> &[Repository] {
        &self.repos
    }

    /// Number of repositories.
    pub fn len(&self) -> usize {
        self.repos.len()
    }

    /// True iff the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.repos.is_empty()
    }

    /// Repository by index.
    pub fn get(&self, idx: usize) -> Repository {
        self.repos[idx]
    }

    /// Total bytes across the catalog.
    pub fn total_bytes(&self) -> u64 {
        self.repos.iter().map(|r| r.bytes).sum()
    }

    /// Index of the largest repository of the given class, if any —
    /// used to pick the "same large repository" of the `80%_large`
    /// configuration.
    pub fn largest_of_class(&self, class: SizeClass) -> Option<usize> {
        self.repos
            .iter()
            .enumerate()
            .filter(|(_, r)| r.size_class() == class)
            .max_by_key(|(_, r)| r.bytes)
            .map(|(i, _)| i)
    }

    /// Indices of repositories in the given class.
    pub fn of_class(&self, class: SizeClass) -> Vec<usize> {
        self.repos
            .iter()
            .enumerate()
            .filter(|(_, r)| r.size_class() == class)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_bounds_partition_the_range() {
        assert_eq!(SizeClass::of(1_000_000), SizeClass::Small);
        assert_eq!(SizeClass::of(50_000_000), SizeClass::Small);
        assert_eq!(SizeClass::of(50_000_001), SizeClass::Medium);
        assert_eq!(SizeClass::of(500_000_000), SizeClass::Medium);
        assert_eq!(SizeClass::of(500_000_001), SizeClass::Large);
        assert_eq!(SizeClass::of(1_000_000_000), SizeClass::Large);
    }

    #[test]
    fn samples_stay_in_class() {
        let mut rng = RngStream::from_seed(1);
        for class in SizeClass::ALL {
            for _ in 0..200 {
                let b = class.sample_bytes(&mut rng);
                assert_eq!(SizeClass::of(b), class, "{b} escaped {class:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RepoCatalog::equal_mix(&mut RngStream::from_seed(7), 50);
        let b = RepoCatalog::equal_mix(&mut RngStream::from_seed(7), 50);
        assert_eq!(a.repos(), b.repos());
    }

    #[test]
    fn ids_are_sequential() {
        let c = RepoCatalog::equal_mix(&mut RngStream::from_seed(7), 10);
        for (i, r) in c.repos().iter().enumerate() {
            assert_eq!(r.id, ObjectId(i as u64));
        }
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
    }

    #[test]
    fn mostly_large_skews_large() {
        let mut rng = RngStream::from_seed(3);
        let c = RepoCatalog::mostly_large(&mut rng, 300);
        let large = c.of_class(SizeClass::Large).len();
        let small = c.of_class(SizeClass::Small).len();
        assert!(large > 150, "large {large}");
        assert!(small < 60, "small {small}");
    }

    #[test]
    fn largest_of_class_finds_the_max() {
        let mut rng = RngStream::from_seed(3);
        let c = RepoCatalog::equal_mix(&mut rng, 100);
        let idx = c.largest_of_class(SizeClass::Large).unwrap();
        let max = c.get(idx).bytes;
        for r in c.repos() {
            if r.size_class() == SizeClass::Large {
                assert!(r.bytes <= max);
            }
        }
        // Empty class case.
        let empty = RepoCatalog::default();
        assert!(empty.largest_of_class(SizeClass::Small).is_none());
    }

    #[test]
    fn resource_ref_roundtrip() {
        let r = Repository {
            id: ObjectId(4),
            bytes: 123,
        };
        let rr = r.as_resource();
        assert_eq!(rr.id, ObjectId(4));
        assert_eq!(rr.bytes, 123);
    }
}
