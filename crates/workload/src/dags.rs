//! DAG workload generators for the atomizer (§5's task-level bidding
//! evaluated on structured jobs).
//!
//! Two shapes, both pure functions of a seed:
//!
//! * [`DagConfig::RepoSplit`] — one clone stage fans out into
//!   heavy-tailed shard scans over the cloned working set, closed by a
//!   merge. The tail makes some shard a natural straggler.
//! * [`DagConfig::MapReduceSkew`] — independent maps over distinct
//!   repositories feed a reduce layer in which one reducer carries a
//!   skew multiple of the others' work (the classic skewed-reducer
//!   straggler).
//!
//! Output artifact ids are carved from a per-arrival block so two
//! concurrent DAGs can never collide in a worker store — a stale
//! credit from arrival *k* must not look like locality for arrival
//! *k+1*.

use crossbid_crossflow::{Arrival, JobSpec, ResourceRef, TaskDag, TaskId, TaskNode};
use crossbid_simcore::{SeedSequence, SimTime};
use crossbid_storage::ObjectId;
use serde::{Deserialize, Serialize};

/// Artifact ids below this are reserved for plain (non-DAG) repos.
pub const DAG_OBJECT_BASE: u64 = 1 << 32;

/// Ids reserved per arrival: task outputs plus external inputs.
const IDS_PER_DAG: u64 = 128;

/// A generated DAG stream's shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DagConfig {
    /// Clone one repository, scan it in `shards` parallel pieces with
    /// Pareto(`tail_alpha`)-tailed CPU cost, merge the results. All
    /// arrivals share the same repository, so task-level bidding can
    /// also exploit clone locality across DAGs.
    RepoSplit {
        /// Parallel scan tasks (capped so the DAG stays within the
        /// 64-task bitmask including clone and merge).
        shards: usize,
        /// Size of the shared repository, in MB.
        repo_mb: u64,
        /// Pareto tail index; smaller is heavier. `1.5` gives an
        /// occasional shard several times the median cost.
        tail_alpha: f64,
    },
    /// `maps` independent scans over distinct repositories feeding
    /// `reduces` reducers that each need *every* map output; reducer 0
    /// does `skew_factor`× the work of its siblings.
    MapReduceSkew {
        /// Map tasks (each reads its own repository).
        maps: usize,
        /// Reduce tasks (each gated on all maps).
        reduces: usize,
        /// CPU multiple carried by reducer 0.
        skew_factor: f64,
    },
}

impl DagConfig {
    /// Stable name used in records and reports.
    pub fn name(self) -> &'static str {
        match self {
            DagConfig::RepoSplit { .. } => "repo_split",
            DagConfig::MapReduceSkew { .. } => "map_reduce_skew",
        }
    }

    /// Tasks per generated DAG.
    pub fn tasks_per_dag(self) -> usize {
        match self {
            DagConfig::RepoSplit { shards, .. } => shards.clamp(1, 62) + 2,
            DagConfig::MapReduceSkew { maps, reduces, .. } => {
                maps.clamp(1, 32) + reduces.clamp(1, 31)
            }
        }
    }

    /// Build one DAG. `block` is the arrival's private artifact-id
    /// range; `rng` drives the heavy tail.
    fn build(self, block: u64, rng: &mut crossbid_simcore::RngStream) -> TaskDag {
        let out = |slot: u64, mb: u64| ResourceRef {
            id: ObjectId(block + slot),
            bytes: mb.max(1) * 1_000_000,
        };
        let tasks = match self {
            DagConfig::RepoSplit {
                shards,
                repo_mb,
                tail_alpha,
            } => {
                let shards = shards.clamp(1, 62);
                // Every arrival clones the *same* repository: id 0 of
                // the stream-wide range, outside any per-arrival block.
                let repo = ResourceRef {
                    id: ObjectId(DAG_OBJECT_BASE - 1),
                    bytes: repo_mb.max(1) * 1_000_000,
                };
                let working = out(0, repo_mb / 2);
                let mut tasks = vec![TaskNode {
                    preds: 0,
                    input: Some(repo),
                    output: working,
                    work_bytes: repo.bytes,
                    cpu_secs: 0.5,
                }];
                for s in 0..shards {
                    // Pareto tail: u in (0,1) maps to (1-u)^(-1/alpha),
                    // median ~1.6 at alpha 1.5 with a long right tail.
                    let u = rng.unit().clamp(0.0, 0.999);
                    let cpu = (1.0 - u).powf(-1.0 / tail_alpha.max(0.1));
                    tasks.push(TaskNode {
                        preds: 1,
                        input: Some(working),
                        output: out(1 + s as u64, 1),
                        work_bytes: working.bytes / shards as u64,
                        cpu_secs: cpu,
                    });
                }
                let all_shards = ((1u64 << shards) - 1) << 1;
                tasks.push(TaskNode {
                    preds: all_shards | 1,
                    input: Some(out(1, 1)),
                    output: out(70, 1),
                    work_bytes: shards as u64 * 1_000_000,
                    cpu_secs: 0.2,
                });
                tasks
            }
            DagConfig::MapReduceSkew {
                maps,
                reduces,
                skew_factor,
            } => {
                let maps = maps.clamp(1, 32);
                let reduces = reduces.clamp(1, 31);
                let mut tasks = Vec::with_capacity(maps + reduces);
                for m in 0..maps {
                    let input = out(64 + m as u64, rng.range_inclusive(20, 80));
                    tasks.push(TaskNode {
                        preds: 0,
                        input: Some(input),
                        output: out(m as u64, 5),
                        work_bytes: input.bytes,
                        cpu_secs: input.bytes as f64 / 100_000_000.0,
                    });
                }
                let all_maps = (1u64 << maps) - 1;
                for r in 0..reduces {
                    let skew = if r == 0 { skew_factor.max(1.0) } else { 1.0 };
                    tasks.push(TaskNode {
                        preds: all_maps,
                        // Dominant input: the co-indexed map's output —
                        // locality-aware bids favour that map's worker.
                        input: Some(out((r % maps) as u64, 5)),
                        output: out(32 + r as u64, 1),
                        work_bytes: maps as u64 * 5_000_000,
                        cpu_secs: 1.0 * skew,
                    });
                }
                tasks
            }
        };
        TaskDag::new(tasks).expect("generated DAGs are valid by construction")
    }

    /// Generate `n_dags` timed DAG arrivals for workflow stage `task`,
    /// spaced `interval_secs` apart. Deterministic in `seed`.
    pub fn generate(
        self,
        seed: u64,
        n_dags: usize,
        task: TaskId,
        interval_secs: f64,
    ) -> Vec<Arrival> {
        let seq = SeedSequence::new(seed);
        (0..n_dags)
            .map(|k| {
                let mut rng = seq.stream(100 + k as u64);
                let block = DAG_OBJECT_BASE + k as u64 * IDS_PER_DAG;
                Arrival {
                    at: SimTime::from_secs_f64(k as f64 * interval_secs),
                    spec: JobSpec::atomized(task, self.build(block, &mut rng)),
                }
            })
            .collect()
    }
}

impl std::fmt::Display for DagConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const SPLIT: DagConfig = DagConfig::RepoSplit {
        shards: 8,
        repo_mb: 200,
        tail_alpha: 1.5,
    };
    const SKEW: DagConfig = DagConfig::MapReduceSkew {
        maps: 6,
        reduces: 3,
        skew_factor: 8.0,
    };

    #[test]
    fn generated_dags_validate_and_have_the_declared_size() {
        for cfg in [SPLIT, SKEW] {
            let arrivals = cfg.generate(7, 4, TaskId(0), 5.0);
            assert_eq!(arrivals.len(), 4);
            for a in &arrivals {
                let dag = a.spec.dag.as_ref().expect("atomized");
                assert_eq!(dag.len(), cfg.tasks_per_dag(), "{cfg}");
                dag.validate().expect("valid");
            }
        }
    }

    #[test]
    fn output_ids_never_collide_across_arrivals() {
        for cfg in [SPLIT, SKEW] {
            let arrivals = cfg.generate(3, 10, TaskId(0), 1.0);
            let mut seen: HashSet<u64> = HashSet::new();
            for a in &arrivals {
                for t in &a.spec.dag.as_ref().unwrap().tasks {
                    assert!(seen.insert(t.output.id.0), "duplicate output {cfg}");
                }
            }
        }
    }

    #[test]
    fn repo_split_shares_one_repository_and_carries_a_tail() {
        let arrivals = SPLIT.generate(11, 6, TaskId(0), 1.0);
        let mut clones: HashSet<u64> = HashSet::new();
        let mut cpus: Vec<f64> = Vec::new();
        for a in &arrivals {
            let dag = a.spec.dag.as_ref().unwrap();
            clones.insert(dag.tasks[0].input.unwrap().id.0);
            cpus.extend(dag.tasks[1..=8].iter().map(|t| t.cpu_secs));
        }
        assert_eq!(clones.len(), 1, "all arrivals clone the same repo");
        let max = cpus.iter().cloned().fold(0.0f64, f64::max);
        let mut sorted = cpus.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        assert!(
            max > 2.0 * median,
            "no tail: max {max:.2} vs median {median:.2}"
        );
    }

    #[test]
    fn skewed_reducer_dominates_its_siblings() {
        let arrivals = SKEW.generate(5, 1, TaskId(0), 1.0);
        let dag = arrivals[0].spec.dag.as_ref().unwrap();
        let reduce0 = &dag.tasks[6];
        let reduce1 = &dag.tasks[7];
        assert_eq!(reduce0.preds, 0b111111, "gated on every map");
        assert!(reduce0.cpu_secs >= 7.9 * reduce1.cpu_secs);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = SPLIT.generate(9, 3, TaskId(0), 2.0);
        let b = SPLIT.generate(9, 3, TaskId(0), 2.0);
        let c = SPLIT.generate(10, 3, TaskId(0), 2.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
