//! The paper's five job configurations (§6.3.1), 120 jobs each.

use crossbid_crossflow::{Arrival, JobSpec, Payload, TaskId};
use crossbid_simcore::SeedSequence;
use serde::{Deserialize, Serialize};

use crate::arrivals::ArrivalProcess;
use crate::repos::{RepoCatalog, SizeClass};

/// The five evaluated job configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobConfig {
    /// "Equal distribution of repository sizes, with all jobs in the
    /// test case scenario using different repositories."
    AllDiffEqual,
    /// "Mostly large repositories, with all jobs ... using different
    /// repositories."
    AllDiffLarge,
    /// "Mostly small repositories, with all jobs ... using different
    /// repositories."
    AllDiffSmall,
    /// "Repetitive pattern with mostly large repositories. Within the
    /// set of large-scale jobs, 80% require the same large
    /// repository."
    Pct80Large,
    /// "Repetitive pattern with mostly small repositories. Within the
    /// set of small-scale jobs, 80% require the same repository."
    Pct80Small,
}

impl JobConfig {
    /// All five configurations, in the paper's order.
    pub const ALL: [JobConfig; 5] = [
        JobConfig::AllDiffEqual,
        JobConfig::AllDiffLarge,
        JobConfig::AllDiffSmall,
        JobConfig::Pct80Large,
        JobConfig::Pct80Small,
    ];

    /// The paper's job count per configuration.
    pub const PAPER_JOB_COUNT: usize = 120;

    /// Stable name used in records and reports.
    pub fn name(self) -> &'static str {
        match self {
            JobConfig::AllDiffEqual => "all_diff_equal",
            JobConfig::AllDiffLarge => "all_diff_large",
            JobConfig::AllDiffSmall => "all_diff_small",
            JobConfig::Pct80Large => "80pct_large",
            JobConfig::Pct80Small => "80pct_small",
        }
    }

    /// Is this one of the repetitive configurations?
    pub fn is_repetitive(self) -> bool {
        matches!(self, JobConfig::Pct80Large | JobConfig::Pct80Small)
    }

    /// The dominant size class of the configuration.
    pub fn dominant_class(self) -> Option<SizeClass> {
        match self {
            JobConfig::AllDiffEqual => None,
            JobConfig::AllDiffLarge | JobConfig::Pct80Large => Some(SizeClass::Large),
            JobConfig::AllDiffSmall | JobConfig::Pct80Small => Some(SizeClass::Small),
        }
    }

    /// Generate the stream of jobs for this configuration.
    ///
    /// * `seed` — all randomness (catalog sizes, repetition choices,
    ///   arrival jitter) derives from it;
    /// * `n_jobs` — 120 in the paper; parameterized for scaling
    ///   benches;
    /// * `task` — the workflow task that consumes the jobs.
    pub fn generate(
        self,
        seed: u64,
        n_jobs: usize,
        task: TaskId,
        arrivals: &ArrivalProcess,
    ) -> JobStream {
        let seq = SeedSequence::new(seed);
        let mut rng_cat = seq.stream(0);
        let mut rng_pick = seq.stream(1);
        let mut rng_arr = seq.stream(2);

        // Catalog: one candidate repository per job keeps "all
        // different" configurations honest.
        let catalog = match self {
            JobConfig::AllDiffEqual => RepoCatalog::equal_mix(&mut rng_cat, n_jobs),
            JobConfig::AllDiffLarge | JobConfig::Pct80Large => {
                RepoCatalog::mostly_large(&mut rng_cat, n_jobs)
            }
            JobConfig::AllDiffSmall | JobConfig::Pct80Small => {
                RepoCatalog::mostly_small(&mut rng_cat, n_jobs)
            }
        };

        // Which repository each job uses.
        let repo_indices: Vec<usize> = match self {
            JobConfig::AllDiffEqual | JobConfig::AllDiffLarge | JobConfig::AllDiffSmall => {
                (0..n_jobs).collect()
            }
            JobConfig::Pct80Large | JobConfig::Pct80Small => {
                let class = self.dominant_class().expect("repetitive has a class");
                let hot = catalog.largest_of_class(class).unwrap_or(0);
                (0..n_jobs)
                    .map(|i| {
                        // A job of the dominant class re-uses the hot
                        // repository with probability 0.8; everything
                        // else keeps its own repo.
                        if catalog.get(i).size_class() == class && rng_pick.chance(0.8) {
                            hot
                        } else {
                            i
                        }
                    })
                    .collect()
            }
        };

        let times = arrivals.times(n_jobs, &mut rng_arr);
        let arrivals: Vec<Arrival> = repo_indices
            .iter()
            .zip(&times)
            .map(|(&ri, &at)| {
                let repo = catalog.get(ri);
                Arrival {
                    at,
                    spec: JobSpec::scanning(
                        task,
                        repo.as_resource(),
                        Payload::Pair(ri as u64, repo.id.0),
                    ),
                }
            })
            .collect();

        JobStream { catalog, arrivals }
    }
}

impl std::fmt::Display for JobConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated job stream plus the catalog it draws from.
#[derive(Debug, Clone)]
pub struct JobStream {
    /// The repository catalog.
    pub catalog: RepoCatalog,
    /// The timed arrivals, ready for the engine.
    pub arrivals: Vec<Arrival>,
}

impl JobStream {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True iff the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Number of *distinct* repositories actually referenced.
    pub fn distinct_repos(&self) -> usize {
        let mut ids: Vec<u64> = self
            .arrivals
            .iter()
            .filter_map(|a| a.spec.resource.map(|r| r.id.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Total bytes that would be transferred if every job fetched its
    /// repository fresh (an upper bound on data load per iteration).
    pub fn worst_case_bytes(&self) -> u64 {
        self.arrivals
            .iter()
            .filter_map(|a| a.spec.resource.map(|r| r.bytes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(cfg: JobConfig, seed: u64) -> JobStream {
        cfg.generate(
            seed,
            120,
            TaskId(0),
            &ArrivalProcess::Periodic { interval_secs: 1.0 },
        )
    }

    #[test]
    fn names_unique_and_stable() {
        let mut names: Vec<&str> = JobConfig::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        assert_eq!(JobConfig::Pct80Large.to_string(), "80pct_large");
    }

    #[test]
    fn all_diff_uses_distinct_repositories() {
        for cfg in [
            JobConfig::AllDiffEqual,
            JobConfig::AllDiffLarge,
            JobConfig::AllDiffSmall,
        ] {
            let s = gen(cfg, 11);
            assert_eq!(s.len(), 120);
            assert_eq!(s.distinct_repos(), 120, "{cfg}");
        }
    }

    #[test]
    fn repetitive_reuses_a_hot_repository() {
        let s = gen(JobConfig::Pct80Large, 11);
        assert_eq!(s.len(), 120);
        assert!(
            s.distinct_repos() < 60,
            "heavy reuse expected, got {} distinct",
            s.distinct_repos()
        );
        // The hot repo should account for the bulk of the dominant
        // class's jobs (~80% of ~70% of 120 ≈ 67).
        let mut counts = std::collections::HashMap::new();
        for a in &s.arrivals {
            *counts.entry(a.spec.resource.unwrap().id.0).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 40, "hot repo used {max} times");
    }

    #[test]
    fn dominant_class_dominates() {
        let s = gen(JobConfig::AllDiffLarge, 5);
        let large = s
            .arrivals
            .iter()
            .filter(|a| SizeClass::of(a.spec.resource.unwrap().bytes) == SizeClass::Large)
            .count();
        assert!(large > 70, "large jobs {large}/120");

        let s = gen(JobConfig::AllDiffSmall, 5);
        let small = s
            .arrivals
            .iter()
            .filter(|a| SizeClass::of(a.spec.resource.unwrap().bytes) == SizeClass::Small)
            .count();
        assert!(small > 70, "small jobs {small}/120");
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = gen(JobConfig::Pct80Small, 3);
        let b = gen(JobConfig::Pct80Small, 3);
        let c = gen(JobConfig::Pct80Small, 4);
        assert_eq!(a.arrivals, b.arrivals);
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn arrivals_are_timed_by_the_process() {
        let s = JobConfig::AllDiffEqual.generate(
            1,
            10,
            TaskId(0),
            &ArrivalProcess::Periodic { interval_secs: 2.0 },
        );
        assert_eq!(s.arrivals[3].at, crossbid_simcore::SimTime::from_secs(6));
    }

    #[test]
    fn worst_case_bytes_sums_resources() {
        let s = gen(JobConfig::AllDiffSmall, 1);
        let manual: u64 = s
            .arrivals
            .iter()
            .map(|a| a.spec.resource.unwrap().bytes)
            .sum();
        assert_eq!(s.worst_case_bytes(), manual);
        assert!(manual > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every configuration generates exactly the requested number
        /// of jobs, each with a resource whose size is within the
        /// global 1 MB–1 GB range.
        #[test]
        fn stream_shape(seed: u64, n in 1usize..200, cfg_idx in 0usize..5) {
            let cfg = JobConfig::ALL[cfg_idx];
            let s = cfg.generate(seed, n, TaskId(0), &ArrivalProcess::Batch);
            prop_assert_eq!(s.len(), n);
            for a in &s.arrivals {
                let r = a.spec.resource.expect("scanning jobs have resources");
                prop_assert!((1_000_000..=1_000_000_000).contains(&r.bytes));
                prop_assert_eq!(a.spec.work_bytes, r.bytes);
            }
        }

        /// Repetition never *increases* the number of distinct repos
        /// beyond the all-different equivalent.
        #[test]
        fn repetition_reduces_distinct(seed: u64, n in 10usize..150) {
            let rep = JobConfig::Pct80Large.generate(seed, n, TaskId(0), &ArrivalProcess::Batch);
            prop_assert!(rep.distinct_repos() <= n);
        }
    }
}
