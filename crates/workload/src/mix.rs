//! Custom workload mixes — a builder for job streams beyond the
//! paper's five presets, used by the ablation benches and by
//! downstream users exploring their own regimes.
//!
//! A [`JobMix`] describes a stream as a set of weighted components,
//! each with its own size class (or exact size), repetition behaviour
//! and optional CPU cost. The paper's presets are expressible as
//! mixes (see the tests), but mixes can also describe e.g. "10% huge
//! hot repository, 60% medium cold, 30% pure-CPU".

use crossbid_crossflow::{Arrival, JobSpec, Payload, ResourceRef, TaskId};
use crossbid_simcore::{RngStream, SeedSequence};
use crossbid_storage::ObjectId;
use serde::{Deserialize, Serialize};

use crate::arrivals::ArrivalProcess;
use crate::jobs::JobStream;
use crate::repos::{RepoCatalog, Repository, SizeClass};

/// How a component chooses repositories.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Repetition {
    /// Every job of this component uses a fresh repository.
    AllDifferent,
    /// All jobs of this component share one repository ("hot").
    SingleHot,
    /// Jobs draw uniformly from a pool of `n` repositories.
    Pool {
        /// Pool size.
        n: usize,
    },
}

/// One weighted component of a mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixComponent {
    /// Relative weight (probability mass) of this component.
    pub weight: f64,
    /// Repository size class (`None` = CPU-only jobs).
    pub size: Option<SizeClass>,
    /// Repository selection behaviour.
    pub repetition: Repetition,
    /// Fixed CPU seconds added to each job.
    pub cpu_secs: f64,
}

impl MixComponent {
    /// A data component with the given weight, size class and
    /// repetition.
    pub fn data(weight: f64, size: SizeClass, repetition: Repetition) -> Self {
        MixComponent {
            weight,
            size: Some(size),
            repetition,
            cpu_secs: 0.0,
        }
    }

    /// A CPU-only component.
    pub fn cpu(weight: f64, cpu_secs: f64) -> Self {
        MixComponent {
            weight,
            size: None,
            repetition: Repetition::AllDifferent,
            cpu_secs,
        }
    }
}

/// A custom workload mix.
#[derive(Debug, Clone, Default)]
pub struct JobMix {
    components: Vec<MixComponent>,
}

impl JobMix {
    /// Empty mix; add components with [`with`](Self::with).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component.
    pub fn with(mut self, c: MixComponent) -> Self {
        self.components.push(c);
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True iff no components were added.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Generate a stream of `n_jobs` for `task`. Panics if the mix is
    /// empty or all weights are zero.
    pub fn generate(
        &self,
        seed: u64,
        n_jobs: usize,
        task: TaskId,
        arrivals: &ArrivalProcess,
    ) -> JobStream {
        assert!(!self.components.is_empty(), "empty mix");
        let seq = SeedSequence::new(seed);
        let mut rng_pick = seq.stream(0);
        let mut rng_size = seq.stream(1);
        let mut rng_arr = seq.stream(2);

        let weights: Vec<f64> = self.components.iter().map(|c| c.weight).collect();

        // Pre-create hot repositories and pools per component so
        // repetition is stable across the stream.
        let mut repos: Vec<Repository> = Vec::new();
        let mut next_id = 0u64;
        let mut alloc_repo =
            |class: SizeClass, rng: &mut RngStream, repos: &mut Vec<Repository>| {
                let r = Repository {
                    id: ObjectId(next_id),
                    bytes: class.sample_bytes(rng),
                };
                next_id += 1;
                repos.push(r);
                r
            };
        #[derive(Clone)]
        enum Source {
            Fresh(SizeClass),
            Hot(Repository),
            Pool(Vec<Repository>),
            None,
        }
        let sources: Vec<Source> = self
            .components
            .iter()
            .map(|c| match (c.size, c.repetition) {
                (None, _) => Source::None,
                (Some(class), Repetition::AllDifferent) => Source::Fresh(class),
                (Some(class), Repetition::SingleHot) => {
                    Source::Hot(alloc_repo(class, &mut rng_size, &mut repos))
                }
                (Some(class), Repetition::Pool { n }) => Source::Pool(
                    (0..n.max(1))
                        .map(|_| alloc_repo(class, &mut rng_size, &mut repos))
                        .collect(),
                ),
            })
            .collect();

        let times = arrivals.times(n_jobs, &mut rng_arr);
        let mut arrivals_out: Vec<Arrival> = Vec::with_capacity(n_jobs);
        for (i, &at) in times.iter().enumerate() {
            let ci = rng_pick.weighted_index(&weights);
            let c = self.components[ci];
            let resource: Option<ResourceRef> = match &sources[ci] {
                Source::None => None,
                Source::Fresh(class) => {
                    Some(alloc_repo(*class, &mut rng_size, &mut repos).as_resource())
                }
                Source::Hot(r) => Some(r.as_resource()),
                Source::Pool(pool) => {
                    Some(pool[rng_pick.below(pool.len() as u64) as usize].as_resource())
                }
            };
            let spec = match resource {
                Some(r) => JobSpec {
                    task,
                    resource: Some(r),
                    work_bytes: r.bytes,
                    cpu_secs: c.cpu_secs,
                    payload: Payload::Pair(i as u64, r.id.0),
                    origin: None,
                    dag: None,
                },
                None => JobSpec::compute(task, c.cpu_secs, Payload::Index(i as u64)),
            };
            arrivals_out.push(Arrival { at, spec });
        }

        JobStream {
            catalog: RepoCatalog::from_repos(repos),
            arrivals: arrivals_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(mix: &JobMix, n: usize) -> JobStream {
        mix.generate(7, n, TaskId(0), &ArrivalProcess::Batch)
    }

    #[test]
    fn single_hot_component_reuses_one_repo() {
        let mix = JobMix::new().with(MixComponent::data(
            1.0,
            SizeClass::Large,
            Repetition::SingleHot,
        ));
        let s = gen(&mix, 50);
        assert_eq!(s.len(), 50);
        assert_eq!(s.distinct_repos(), 1);
    }

    #[test]
    fn all_different_component_never_reuses() {
        let mix = JobMix::new().with(MixComponent::data(
            1.0,
            SizeClass::Small,
            Repetition::AllDifferent,
        ));
        let s = gen(&mix, 40);
        assert_eq!(s.distinct_repos(), 40);
    }

    #[test]
    fn pool_component_bounded_by_pool_size() {
        let mix = JobMix::new().with(MixComponent::data(
            1.0,
            SizeClass::Medium,
            Repetition::Pool { n: 5 },
        ));
        let s = gen(&mix, 100);
        assert!(s.distinct_repos() <= 5);
        assert!(s.distinct_repos() >= 2, "100 draws hit several pool slots");
    }

    #[test]
    fn cpu_component_has_no_resources() {
        let mix = JobMix::new().with(MixComponent::cpu(1.0, 2.5));
        let s = gen(&mix, 10);
        for a in &s.arrivals {
            assert!(a.spec.resource.is_none());
            assert_eq!(a.spec.cpu_secs, 2.5);
        }
        assert_eq!(s.distinct_repos(), 0);
    }

    #[test]
    fn weights_control_the_blend() {
        let mix = JobMix::new()
            .with(MixComponent::data(
                0.8,
                SizeClass::Large,
                Repetition::SingleHot,
            ))
            .with(MixComponent::cpu(0.2, 1.0));
        let s = gen(&mix, 500);
        let data_jobs = s
            .arrivals
            .iter()
            .filter(|a| a.spec.resource.is_some())
            .count();
        let frac = data_jobs as f64 / 500.0;
        assert!((frac - 0.8).abs() < 0.06, "frac {frac}");
    }

    #[test]
    fn paper_80pct_large_shape_is_expressible() {
        // ~70% of jobs on one hot large repo, the rest fresh.
        let mix = JobMix::new()
            .with(MixComponent::data(
                0.7,
                SizeClass::Large,
                Repetition::SingleHot,
            ))
            .with(MixComponent::data(
                0.3,
                SizeClass::Large,
                Repetition::AllDifferent,
            ));
        let s = gen(&mix, 120);
        assert!(s.distinct_repos() < 60);
        assert!(s.worst_case_bytes() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let mix = JobMix::new().with(MixComponent::data(
            1.0,
            SizeClass::Small,
            Repetition::Pool { n: 3 },
        ));
        let a = mix.generate(9, 30, TaskId(0), &ArrivalProcess::Batch);
        let b = mix.generate(9, 30, TaskId(0), &ArrivalProcess::Batch);
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    #[should_panic]
    fn empty_mix_panics() {
        gen(&JobMix::new(), 5);
    }
}
