//! Analysis of the mined co-occurrence data — the insight extraction
//! the MSR pipeline exists for ("we investigate how often these
//! libraries are used together", §2).
//!
//! Beyond the raw counts of [`CoOccurrenceMatrix`], downstream users
//! want *normalized* association measures: how often two libraries
//! co-occur relative to how often each occurs at all. This module
//! computes per-library occurrence counts over a universe and the
//! standard association metrics (Jaccard similarity and lift).

use std::collections::BTreeMap;

use crate::cooccurrence::CoOccurrenceMatrix;
use crate::github::{LibraryId, SyntheticGitHub};

/// Per-library repository-occurrence counts over a universe.
#[derive(Debug, Clone, Default)]
pub struct OccurrenceCounts {
    counts: BTreeMap<LibraryId, u64>,
    repos: u64,
}

impl OccurrenceCounts {
    /// Count, for every library, how many repositories depend on it.
    pub fn from_universe(gh: &SyntheticGitHub) -> Self {
        let mut counts: BTreeMap<LibraryId, u64> = BTreeMap::new();
        for r in gh.repos() {
            for &lib in &r.deps {
                *counts.entry(lib).or_insert(0) += 1;
            }
        }
        OccurrenceCounts {
            counts,
            repos: gh.len() as u64,
        }
    }

    /// Repositories depending on `lib`.
    pub fn get(&self, lib: LibraryId) -> u64 {
        self.counts.get(&lib).copied().unwrap_or(0)
    }

    /// Number of repositories in the universe.
    pub fn repo_count(&self) -> u64 {
        self.repos
    }

    /// Libraries sorted by occurrence, descending.
    pub fn ranking(&self) -> Vec<(LibraryId, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(l, c)| (*l, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Association metrics between two libraries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Association {
    /// The pair.
    pub pair: (LibraryId, LibraryId),
    /// Repositories containing both.
    pub both: u64,
    /// Jaccard similarity `|A∩B| / |A∪B|` in `[0, 1]`.
    pub jaccard: f64,
    /// Lift `P(A∩B) / (P(A)·P(B))`; > 1 means the pair co-occurs more
    /// than independence predicts.
    pub lift: f64,
}

/// Compute association metrics for every pair present in the matrix.
/// `both` counts use the *universe* (ground truth manifests), so the
/// metrics are independent of how many pipeline jobs touched each
/// repo.
pub fn associations(gh: &SyntheticGitHub, matrix: &CoOccurrenceMatrix) -> Vec<Association> {
    let occ = OccurrenceCounts::from_universe(gh);
    let n = occ.repo_count() as f64;
    if n == 0.0 {
        return Vec::new();
    }
    let both_count = |a: LibraryId, b: LibraryId| -> u64 {
        gh.repos()
            .iter()
            .filter(|r| r.depends_on(a) && r.depends_on(b))
            .count() as u64
    };
    let mut out: Vec<Association> = matrix
        .top(usize::MAX)
        .into_iter()
        .map(|((a, b), _)| {
            let ca = occ.get(a);
            let cb = occ.get(b);
            let both = both_count(a, b);
            let union = ca + cb - both;
            let jaccard = if union == 0 {
                0.0
            } else {
                both as f64 / union as f64
            };
            let lift = if ca == 0 || cb == 0 {
                0.0
            } else {
                (both as f64 / n) / ((ca as f64 / n) * (cb as f64 / n))
            };
            Association {
                pair: (a, b),
                both,
                jaccard,
                lift,
            }
        })
        .collect();
    out.sort_by(|x, y| {
        y.jaccard
            .partial_cmp(&x.jaccard)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.pair.cmp(&y.pair))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::github::GitHubParams;

    fn universe() -> SyntheticGitHub {
        SyntheticGitHub::generate(
            3,
            &GitHubParams {
                n_repos: 20,
                n_libraries: 15,
                mean_deps: 5.0,
                popularity_skew: 0.8,
            },
        )
    }

    #[test]
    fn occurrence_counts_match_manifests() {
        let gh = universe();
        let occ = OccurrenceCounts::from_universe(&gh);
        assert_eq!(occ.repo_count(), 20);
        for lib in 0..15u32 {
            let manual = gh
                .repos()
                .iter()
                .filter(|r| r.depends_on(LibraryId(lib)))
                .count() as u64;
            assert_eq!(occ.get(LibraryId(lib)), manual);
        }
        // Ranking is descending.
        let ranking = occ.ranking();
        assert!(ranking.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn jaccard_and_lift_are_well_formed() {
        let gh = universe();
        // Ground-truth matrix over the whole universe.
        let mut m = CoOccurrenceMatrix::new();
        for r in gh.repos() {
            m.record_group(&r.deps);
        }
        let assoc = associations(&gh, &m);
        assert!(!assoc.is_empty());
        for a in &assoc {
            assert!((0.0..=1.0).contains(&a.jaccard), "jaccard {}", a.jaccard);
            assert!(a.lift >= 0.0);
            assert!(a.both > 0, "matrix pairs co-occur somewhere");
        }
        // Sorted by jaccard descending.
        assert!(assoc.windows(2).all(|w| w[0].jaccard >= w[1].jaccard));
    }

    #[test]
    fn perfect_overlap_has_jaccard_one() {
        // Construct a tiny bespoke universe via generate is awkward;
        // instead verify the formula on a pair that always co-occurs.
        let gh = universe();
        let mut m = CoOccurrenceMatrix::new();
        for r in gh.repos() {
            m.record_group(&r.deps);
        }
        for a in associations(&gh, &m) {
            let (x, y) = a.pair;
            let occ = OccurrenceCounts::from_universe(&gh);
            if occ.get(x) == a.both && occ.get(y) == a.both {
                assert!((a.jaccard - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_matrix_yields_no_associations() {
        let gh = universe();
        let m = CoOccurrenceMatrix::new();
        assert!(associations(&gh, &m).is_empty());
    }
}
