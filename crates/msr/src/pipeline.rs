//! The Figure 1 pipeline as a Crossflow workflow.
//!
//! Three tasks, mirroring the paper's protocol (§2):
//!
//! 1. **RepositorySearch** — a cheap CPU job per library: queries the
//!    (synthetic) GitHub API for candidate repositories and emits one
//!    `(library, repository)` job per candidate.
//! 2. **RepositorySearcher** — the expensive step: clone the
//!    repository (the data dependency the schedulers fight over) and
//!    scan its `package.json` files for the library; emits a
//!    confirmation job when the dependency is real.
//! 3. **CoOccurrenceCounter** — a cheap CPU job folding confirmed
//!    `(library, repository)` pairs into the [`CoOccurrenceMatrix`].

use std::any::Any;
use std::sync::Arc;

use crossbid_crossflow::{Arrival, Job, JobSpec, Payload, TaskCtx, TaskId, TaskLogic, Workflow};
use crossbid_simcore::{RngStream, SeedSequence};
use crossbid_storage::ObjectId;

use crate::cooccurrence::CoOccurrenceMatrix;
use crate::github::{LibraryId, SyntheticGitHub};

/// Handle to the constructed pipeline: task ids plus the shared
/// GitHub universe.
#[derive(Clone)]
pub struct MsrPipeline {
    /// The synthetic GitHub all tasks consult.
    pub github: Arc<SyntheticGitHub>,
    /// Task 0: RepositorySearch.
    pub search: TaskId,
    /// Task 1: RepositorySearcher (the clone + scan step).
    pub scan: TaskId,
    /// Task 2: CoOccurrenceCounter (terminal).
    pub count: TaskId,
}

/// CPU seconds for a GitHub API search call.
const SEARCH_CPU_SECS: f64 = 1.0;
/// CPU seconds to fold one confirmed pair into the matrix.
const COUNT_CPU_SECS: f64 = 0.05;

struct SearchTask {
    github: Arc<SyntheticGitHub>,
    scan: TaskId,
    false_positive_rate: f64,
    rng: RngStream,
}

impl TaskLogic for SearchTask {
    fn process(&mut self, job: &Job, _ctx: &TaskCtx, out: &mut Vec<JobSpec>) {
        let Payload::Index(lib) = job.payload else {
            return;
        };
        let lib = LibraryId(lib as u32);
        for repo_id in self
            .github
            .search(lib, self.false_positive_rate, &mut self.rng)
        {
            let repo = self.github.repo(repo_id).expect("search returns valid ids");
            out.push(JobSpec::scanning(
                self.scan,
                repo.repo.as_resource(),
                Payload::Pair(lib.0 as u64, repo_id.0),
            ));
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct ScanTask {
    github: Arc<SyntheticGitHub>,
    count: TaskId,
}

impl TaskLogic for ScanTask {
    fn process(&mut self, job: &Job, _ctx: &TaskCtx, out: &mut Vec<JobSpec>) {
        let Payload::Pair(lib, repo_id) = job.payload else {
            return;
        };
        let repo = self
            .github
            .repo(ObjectId(repo_id))
            .expect("scan jobs carry valid repo ids");
        // The actual grep over package.json: only confirmed
        // dependencies flow downstream (false positives die here).
        if repo.depends_on(LibraryId(lib as u32)) {
            out.push(JobSpec::compute(
                self.count,
                COUNT_CPU_SECS,
                Payload::Pair(lib, repo_id),
            ));
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Terminal counting task; owns the matrix (retrieved after the run
/// via [`MsrPipeline::matrix`]).
pub struct CountTask {
    github: Arc<SyntheticGitHub>,
    matrix: CoOccurrenceMatrix,
    confirmed: u64,
}

impl TaskLogic for CountTask {
    fn process(&mut self, job: &Job, _ctx: &TaskCtx, _out: &mut Vec<JobSpec>) {
        let Payload::Pair(lib, repo_id) = job.payload else {
            return;
        };
        let lib = LibraryId(lib as u32);
        let repo = self
            .github
            .repo(ObjectId(repo_id))
            .expect("count jobs carry valid repo ids");
        self.confirmed += 1;
        // Count the confirmed library against every other library
        // present in the same repository.
        for &other in &repo.deps {
            self.matrix.record(lib, other);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Build the MSR workflow over a GitHub universe. `seed` drives the
/// search task's false-positive sampling; `false_positive_rate` is
/// the fraction of non-dependent repositories the recall-oriented
/// search still returns (they get cloned and rejected by the scan,
/// like real over-broad search results).
pub fn build_pipeline(
    workflow: &mut Workflow,
    github: Arc<SyntheticGitHub>,
    seed: u64,
    false_positive_rate: f64,
) -> MsrPipeline {
    // Ids are sequential; capture them before boxing the logic.
    let search = TaskId(workflow.len() as u32);
    let scan = TaskId(search.0 + 1);
    let count = TaskId(search.0 + 2);
    let s = workflow.add_task(
        "repository-search",
        Box::new(SearchTask {
            github: Arc::clone(&github),
            scan,
            false_positive_rate,
            rng: SeedSequence::new(seed).stream(77),
        }),
    );
    debug_assert_eq!(s, search);
    workflow.add_task(
        "repository-searcher",
        Box::new(ScanTask {
            github: Arc::clone(&github),
            count,
        }),
    );
    workflow.add_task(
        "co-occurrence-counter",
        Box::new(CountTask {
            github: Arc::clone(&github),
            matrix: CoOccurrenceMatrix::new(),
            confirmed: 0,
        }),
    );
    // Figure 1's channels: search → searcher → counter.
    workflow.connect(search, scan);
    workflow.connect(scan, count);
    MsrPipeline {
        github,
        search,
        scan,
        count,
    }
}

impl MsrPipeline {
    /// The accumulated co-occurrence matrix (clone; the workflow keeps
    /// accumulating across session iterations).
    pub fn matrix(&self, workflow: &mut Workflow) -> CoOccurrenceMatrix {
        workflow
            .logic_as::<CountTask>(self.count)
            .expect("count task present")
            .matrix
            .clone()
    }

    /// Number of confirmed (library, repository) pairs so far.
    pub fn confirmed(&self, workflow: &mut Workflow) -> u64 {
        workflow
            .logic_as::<CountTask>(self.count)
            .expect("count task present")
            .confirmed
    }

    /// One library-search job.
    pub fn library_job(&self, lib: LibraryId) -> JobSpec {
        JobSpec::compute(self.search, SEARCH_CPU_SECS, Payload::Index(lib.0 as u64))
    }
}

/// The incoming stream of §2: one job per library in the popular-NPM
/// list, spaced by `interval_secs`.
pub fn library_arrivals(
    pipeline: &MsrPipeline,
    n_libraries: u32,
    interval_secs: f64,
) -> Vec<Arrival> {
    (0..n_libraries)
        .map(|i| Arrival {
            at: crossbid_simcore::SimTime::from_secs_f64(i as f64 * interval_secs),
            spec: pipeline.library_job(LibraryId(i)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::github::GitHubParams;
    use crossbid_core::BiddingAllocator;
    use crossbid_crossflow::{
        run_workflow, BaselineAllocator, Cluster, EngineConfig, RunMeta, WorkerSpec,
    };

    fn small_universe() -> Arc<SyntheticGitHub> {
        Arc::new(SyntheticGitHub::generate(
            42,
            &GitHubParams {
                n_repos: 6,
                n_libraries: 10,
                mean_deps: 4.0,
                popularity_skew: 0.8,
            },
        ))
    }

    fn specs(n: usize) -> Vec<WorkerSpec> {
        (0..n)
            .map(|i| {
                WorkerSpec::builder(format!("w{i}"))
                    .net_mbps(50.0)
                    .rw_mbps(200.0)
                    .storage_gb(8.0)
                    .build()
            })
            .collect()
    }

    #[test]
    fn pipeline_produces_cooccurrences() {
        let gh = small_universe();
        let mut wf = Workflow::new();
        let pipe = build_pipeline(&mut wf, Arc::clone(&gh), 1, 0.0);
        let arrivals = library_arrivals(&pipe, 10, 0.5);
        let cfg = EngineConfig::ideal();
        let mut cluster = Cluster::new(&specs(3), &cfg);
        let out = run_workflow(
            &mut cluster,
            &mut wf,
            &BaselineAllocator,
            arrivals,
            &cfg,
            &RunMeta::default(),
        );
        // Every library job, every (lib, repo) scan, every confirmation
        // completed.
        let expected_scans: u64 = (0..10)
            .map(|l| {
                gh.repos()
                    .iter()
                    .filter(|r| r.depends_on(LibraryId(l)))
                    .count() as u64
            })
            .sum();
        assert_eq!(
            out.record.jobs_completed,
            10 + expected_scans + expected_scans,
            "search + scan + count jobs"
        );
        assert_eq!(pipe.confirmed(&mut wf), expected_scans);
        let m = pipe.matrix(&mut wf);
        assert!(m.total() > 0, "some libraries co-occur");
    }

    #[test]
    fn false_positives_are_cloned_but_not_counted() {
        let gh = small_universe();
        let run = |fp: f64| {
            let mut wf = Workflow::new();
            let pipe = build_pipeline(&mut wf, Arc::clone(&gh), 1, fp);
            let arrivals = library_arrivals(&pipe, 10, 0.5);
            let cfg = EngineConfig::ideal();
            let mut cluster = Cluster::new(&specs(3), &cfg);
            let out = run_workflow(
                &mut cluster,
                &mut wf,
                &BaselineAllocator,
                arrivals,
                &cfg,
                &RunMeta::default(),
            );
            (out.record.jobs_completed, pipe.confirmed(&mut wf))
        };
        let (jobs_exact, confirmed_exact) = run(0.0);
        let (jobs_fuzzy, confirmed_fuzzy) = run(0.5);
        assert!(jobs_fuzzy > jobs_exact, "false positives add scan jobs");
        assert_eq!(
            confirmed_exact, confirmed_fuzzy,
            "scan filters false positives, counts unchanged"
        );
    }

    #[test]
    fn matrix_is_scheduler_invariant() {
        // The analysis result must not depend on who executed what.
        let gh = small_universe();
        let run = |alloc: &dyn crossbid_crossflow::Allocator| {
            let mut wf = Workflow::new();
            let pipe = build_pipeline(&mut wf, Arc::clone(&gh), 1, 0.0);
            let arrivals = library_arrivals(&pipe, 10, 0.5);
            let cfg = EngineConfig::default();
            let mut cluster = Cluster::new(&specs(3), &cfg);
            run_workflow(
                &mut cluster,
                &mut wf,
                alloc,
                arrivals,
                &cfg,
                &RunMeta::default(),
            );
            pipe.matrix(&mut wf).to_csv()
        };
        let a = run(&BaselineAllocator);
        let b = run(&BiddingAllocator::new());
        assert_eq!(a, b);
    }
}
