//! # crossbid-msr
//!
//! The paper's motivating application (§2): mining software
//! repositories to measure "how often popular NPM libraries for
//! JavaScript co-occur in favoured large-scale projects on GitHub",
//! specified as the Crossflow pipeline of Figure 1:
//!
//! ```text
//! libraries ──▶ RepositorySearch ──▶ (library, repo) jobs
//!              ──▶ RepositorySearcher (clone + scan package.json)
//!              ──▶ CoOccurrenceCounter ──▶ CSV-style results
//! ```
//!
//! The real pipeline hits the GitHub API and clones repositories of
//! up to a gigabyte; this crate substitutes a [`SyntheticGitHub`]
//! whose repositories carry dependency manifests, so the *cost
//! structure* (expensive clones, cheap scans, heavy reuse of popular
//! repositories) and the *analysis output* (a co-occurrence matrix)
//! are both preserved.

//! ```
//! use std::sync::Arc;
//! use crossbid_crossflow::{run_workflow, BaselineAllocator, Cluster, EngineConfig, RunMeta, Workflow};
//! use crossbid_msr::github::GitHubParams;
//! use crossbid_msr::{build_pipeline, library_arrivals, SyntheticGitHub};
//! use crossbid_workload::WorkerConfig;
//!
//! let gh = Arc::new(SyntheticGitHub::generate(1, &GitHubParams {
//!     n_repos: 5, n_libraries: 8, mean_deps: 3.0, popularity_skew: 0.8,
//! }));
//! let mut wf = Workflow::new();
//! let pipe = build_pipeline(&mut wf, Arc::clone(&gh), 1, 0.0);
//! let arrivals = library_arrivals(&pipe, 8, 1.0);
//! let cfg = EngineConfig::ideal();
//! let mut cluster = Cluster::new(&WorkerConfig::AllEqual.specs(2), &cfg);
//! run_workflow(&mut cluster, &mut wf, &BaselineAllocator, arrivals, &cfg, &RunMeta::default());
//! let matrix = pipe.matrix(&mut wf);
//! assert!(matrix.total() > 0, "some libraries co-occur");
//! ```

pub mod analysis;
pub mod cooccurrence;
pub mod github;
pub mod pipeline;

pub use analysis::{associations, Association, OccurrenceCounts};
pub use cooccurrence::CoOccurrenceMatrix;
pub use github::{GhRepo, LibraryId, SyntheticGitHub};
pub use pipeline::{build_pipeline, library_arrivals, MsrPipeline};
