//! The co-occurrence matrix — the pipeline's final output
//! ("Calculate the number of times libraries appear together and
//! store the results in a CSV file", §2 step 4).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::github::LibraryId;

/// Symmetric co-occurrence counts over library pairs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoOccurrenceMatrix {
    counts: BTreeMap<(LibraryId, LibraryId), u64>,
}

impl CoOccurrenceMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one co-occurrence of `a` and `b` (order-insensitive;
    /// self-pairs are ignored).
    pub fn record(&mut self, a: LibraryId, b: LibraryId) {
        if a == b {
            return;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Record all pairs among `libs` found together in one repository.
    pub fn record_group(&mut self, libs: &[LibraryId]) {
        for i in 0..libs.len() {
            for j in (i + 1)..libs.len() {
                self.record(libs[i], libs[j]);
            }
        }
    }

    /// Count for a pair (order-insensitive).
    pub fn get(&self, a: LibraryId, b: LibraryId) -> u64 {
        if a == b {
            return 0;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct pairs with non-zero count.
    pub fn pair_count(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The `n` most frequent pairs, descending (ties by pair id).
    pub fn top(&self, n: usize) -> Vec<((LibraryId, LibraryId), u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &CoOccurrenceMatrix) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += v;
        }
    }

    /// CSV rendering: `lib_a,lib_b,count` rows, descending by count
    /// (step 4's "store the results in a CSV file").
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lib_a,lib_b,count\n");
        for ((a, b), c) in self.top(self.counts.len()) {
            out.push_str(&format!("{},{},{}\n", a.0, b.0, c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LibraryId {
        LibraryId(i)
    }

    #[test]
    fn record_is_symmetric() {
        let mut m = CoOccurrenceMatrix::new();
        m.record(l(1), l(2));
        m.record(l(2), l(1));
        assert_eq!(m.get(l(1), l(2)), 2);
        assert_eq!(m.get(l(2), l(1)), 2);
        assert_eq!(m.pair_count(), 1);
    }

    #[test]
    fn self_pairs_ignored() {
        let mut m = CoOccurrenceMatrix::new();
        m.record(l(3), l(3));
        assert_eq!(m.total(), 0);
        assert_eq!(m.get(l(3), l(3)), 0);
    }

    #[test]
    fn record_group_counts_all_pairs() {
        let mut m = CoOccurrenceMatrix::new();
        m.record_group(&[l(0), l(1), l(2)]);
        assert_eq!(m.total(), 3);
        assert_eq!(m.get(l(0), l(2)), 1);
    }

    #[test]
    fn top_sorts_descending() {
        let mut m = CoOccurrenceMatrix::new();
        for _ in 0..3 {
            m.record(l(1), l(2));
        }
        m.record(l(3), l(4));
        let top = m.top(10);
        assert_eq!(top[0], ((l(1), l(2)), 3));
        assert_eq!(top[1], ((l(3), l(4)), 1));
        assert_eq!(m.top(1).len(), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CoOccurrenceMatrix::new();
        a.record(l(1), l(2));
        let mut b = CoOccurrenceMatrix::new();
        b.record(l(1), l(2));
        b.record(l(5), l(6));
        a.merge(&b);
        assert_eq!(a.get(l(1), l(2)), 2);
        assert_eq!(a.get(l(5), l(6)), 1);
    }

    #[test]
    fn csv_rendering() {
        let mut m = CoOccurrenceMatrix::new();
        m.record(l(2), l(1));
        let csv = m.to_csv();
        assert_eq!(csv, "lib_a,lib_b,count\n1,2,1\n");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// total() equals the number of record() calls with distinct
        /// endpoints, regardless of order.
        #[test]
        fn totals_are_conserved(pairs in proptest::collection::vec((0u32..10, 0u32..10), 0..100)) {
            let mut m = CoOccurrenceMatrix::new();
            let mut expected = 0;
            for (a, b) in &pairs {
                m.record(LibraryId(*a), LibraryId(*b));
                if a != b {
                    expected += 1;
                }
            }
            prop_assert_eq!(m.total(), expected);
        }

        /// record_group on n libraries yields n·(n−1)/2 pair counts.
        #[test]
        fn group_pair_arithmetic(n in 0usize..20) {
            let libs: Vec<LibraryId> = (0..n as u32).map(LibraryId).collect();
            let mut m = CoOccurrenceMatrix::new();
            m.record_group(&libs);
            prop_assert_eq!(m.total() as usize, n * n.saturating_sub(1) / 2);
        }
    }
}
