//! A synthetic GitHub: large repositories with `package.json`
//! dependency manifests.
//!
//! Substitutes the real GitHub API + `git clone` (unavailable here)
//! while preserving what the schedulers see: a catalog of large
//! repositories (≥ 500 MB, the paper's "favoured large-scale
//! projects" filter), each declaring dependencies on a
//! popularity-skewed set of NPM libraries.

use crossbid_simcore::{RngStream, SeedSequence};
use crossbid_storage::ObjectId;
use crossbid_workload::{Repository, SizeClass};
use serde::{Deserialize, Serialize};

/// Identifier of an NPM library in the synthetic universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LibraryId(pub u32);

/// A synthetic repository: size (for clone cost), popularity signals
/// and its manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GhRepo {
    /// Size/identity (drives transfer and scan costs).
    pub repo: Repository,
    /// Star count (the §2 search filters on "at least 5000 stars").
    pub stars: u32,
    /// Fork count (ditto for forks).
    pub forks: u32,
    /// Libraries this repository's `package.json` files depend on,
    /// sorted ascending.
    pub deps: Vec<LibraryId>,
}

impl GhRepo {
    /// Does the manifest mention `lib`?
    pub fn depends_on(&self, lib: LibraryId) -> bool {
        self.deps.binary_search(&lib).is_ok()
    }

    /// The §2 "favoured large-scale project" predicate:
    /// "repositories larger than 500MB with at least 5000 stars and
    /// forks".
    pub fn is_favoured(&self, min_bytes: u64, min_stars: u32, min_forks: u32) -> bool {
        self.repo.bytes > min_bytes && self.stars >= min_stars && self.forks >= min_forks
    }
}

/// Parameters of the synthetic universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GitHubParams {
    /// Number of repositories returned by the "favoured large-scale
    /// projects" search.
    pub n_repos: usize,
    /// Number of NPM libraries in the popular-libraries list.
    pub n_libraries: u32,
    /// Mean number of dependencies per repository.
    pub mean_deps: f64,
    /// Zipf-like skew of library popularity (0 = uniform; 1 ≈
    /// classic long tail).
    pub popularity_skew: f64,
}

impl Default for GitHubParams {
    fn default() -> Self {
        GitHubParams {
            n_repos: 30,
            n_libraries: 60,
            mean_deps: 8.0,
            popularity_skew: 0.9,
        }
    }
}

/// The synthetic GitHub instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticGitHub {
    repos: Vec<GhRepo>,
    n_libraries: u32,
}

impl SyntheticGitHub {
    /// Generate a universe from a seed.
    pub fn generate(seed: u64, params: &GitHubParams) -> Self {
        let seq = SeedSequence::new(seed);
        let mut rng_size = seq.stream(0);
        let mut rng_deps = seq.stream(1);

        // Popularity weights: w_k = 1 / (k+1)^skew.
        let weights: Vec<f64> = (0..params.n_libraries)
            .map(|k| 1.0 / ((k + 1) as f64).powf(params.popularity_skew))
            .collect();

        let repos = (0..params.n_repos)
            .map(|i| {
                // Favoured large-scale projects: >500 MB (§2).
                let bytes = SizeClass::Large.sample_bytes(&mut rng_size);
                let n_deps = sample_dep_count(params.mean_deps, &mut rng_deps)
                    .min(params.n_libraries as usize);
                let mut deps: Vec<LibraryId> = Vec::with_capacity(n_deps);
                while deps.len() < n_deps {
                    let lib = LibraryId(rng_deps.weighted_index(&weights) as u32);
                    if !deps.contains(&lib) {
                        deps.push(lib);
                    }
                }
                deps.sort_unstable();
                // Popularity is heavy-tailed: a log-normal around the
                // favoured threshold so most repos qualify and some
                // are runaway hits.
                let stars = (5_000.0 * rng_deps.log_normal(0.4, 0.6)) as u32;
                let forks = (stars as f64 * rng_deps.uniform(0.4, 1.2)) as u32;
                GhRepo {
                    repo: Repository {
                        id: ObjectId(i as u64),
                        bytes,
                    },
                    stars,
                    forks,
                    deps,
                }
            })
            .collect();

        SyntheticGitHub {
            repos,
            n_libraries: params.n_libraries,
        }
    }

    /// All repositories.
    pub fn repos(&self) -> &[GhRepo] {
        &self.repos
    }

    /// Number of repositories.
    pub fn len(&self) -> usize {
        self.repos.len()
    }

    /// True iff the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.repos.is_empty()
    }

    /// Number of libraries in the universe.
    pub fn library_count(&self) -> u32 {
        self.n_libraries
    }

    /// Repository by object id.
    pub fn repo(&self, id: ObjectId) -> Option<&GhRepo> {
        self.repos.get(id.0 as usize)
    }

    /// The "RepositorySearch" task's API call: repositories whose
    /// manifests plausibly involve `lib`. The real pipeline's GitHub
    /// search is recall-oriented (clone first, verify by scanning), so
    /// we return every repo that depends on the library plus a
    /// deterministic sample of false positives — the scan step then
    /// does the real verification, exactly like grepping
    /// `package.json` after cloning.
    pub fn search(
        &self,
        lib: LibraryId,
        false_positive_rate: f64,
        rng: &mut RngStream,
    ) -> Vec<ObjectId> {
        self.repos
            .iter()
            .filter(|r| r.depends_on(lib) || rng.chance(false_positive_rate))
            .map(|r| r.repo.id)
            .collect()
    }

    /// The §2 step-2 query: "Search GitHub for favoured large-scale
    /// repositories (e.g. repositories larger than 500MB with at
    /// least 5000 stars and forks)".
    pub fn favoured(&self, min_bytes: u64, min_stars: u32, min_forks: u32) -> Vec<ObjectId> {
        self.repos
            .iter()
            .filter(|r| r.is_favoured(min_bytes, min_stars, min_forks))
            .map(|r| r.repo.id)
            .collect()
    }
}

fn sample_dep_count(mean: f64, rng: &mut RngStream) -> usize {
    // Poisson-ish via rounded exponential mixture; ≥ 1 so every repo
    // has at least one dependency.
    let x = rng.exponential(mean.max(1.0) / 2.0) + mean.max(1.0) / 2.0;
    (x.round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gh(seed: u64) -> SyntheticGitHub {
        SyntheticGitHub::generate(seed, &GitHubParams::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gh(1);
        let b = gh(1);
        for (x, y) in a.repos().iter().zip(b.repos()) {
            assert_eq!(x.repo, y.repo);
            assert_eq!(x.deps, y.deps);
        }
    }

    #[test]
    fn repos_are_large_scale() {
        for r in gh(2).repos() {
            assert!(r.repo.bytes > 500_000_000, "{}", r.repo.bytes);
            assert!(r.repo.bytes <= 1_000_000_000);
            assert!(!r.deps.is_empty());
        }
    }

    #[test]
    fn deps_are_sorted_and_unique() {
        for r in gh(3).repos() {
            assert!(r.deps.windows(2).all(|w| w[0] < w[1]));
            for &d in &r.deps {
                assert!(d.0 < 60);
            }
        }
    }

    #[test]
    fn popular_libraries_appear_more_often() {
        let g = gh(4);
        let count = |lib: u32| {
            g.repos()
                .iter()
                .filter(|r| r.depends_on(LibraryId(lib)))
                .count()
        };
        let head: usize = (0..5).map(count).sum();
        let tail: usize = (55..60).map(count).sum();
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn search_recalls_all_true_dependents() {
        let g = gh(5);
        let mut rng = RngStream::from_seed(1);
        let lib = LibraryId(0);
        let found = g.search(lib, 0.2, &mut rng);
        for r in g.repos() {
            if r.depends_on(lib) {
                assert!(found.contains(&r.repo.id), "missing true positive");
            }
        }
    }

    #[test]
    fn search_without_false_positives_is_exact() {
        let g = gh(6);
        let mut rng = RngStream::from_seed(1);
        let lib = LibraryId(2);
        let found = g.search(lib, 0.0, &mut rng);
        let expected: Vec<ObjectId> = g
            .repos()
            .iter()
            .filter(|r| r.depends_on(lib))
            .map(|r| r.repo.id)
            .collect();
        assert_eq!(found, expected);
    }

    #[test]
    fn repo_lookup_by_id() {
        let g = gh(7);
        let id = g.repos()[3].repo.id;
        assert_eq!(g.repo(id).unwrap().repo.id, id);
        assert!(g.repo(ObjectId(9999)).is_none());
    }
}

#[cfg(test)]
mod favoured_tests {
    use super::*;

    #[test]
    fn popularity_signals_are_generated() {
        let g = SyntheticGitHub::generate(9, &GitHubParams::default());
        assert!(g.repos().iter().any(|r| r.stars >= 5_000));
        assert!(g.repos().iter().all(|r| r.forks > 0));
    }

    #[test]
    fn favoured_filter_applies_all_three_criteria() {
        let g = SyntheticGitHub::generate(9, &GitHubParams::default());
        let favoured = g.favoured(500_000_000, 5_000, 2_000);
        for id in &favoured {
            let r = g.repo(*id).unwrap();
            assert!(r.repo.bytes > 500_000_000);
            assert!(r.stars >= 5_000);
            assert!(r.forks >= 2_000);
        }
        // Impossible thresholds exclude everything.
        assert!(g.favoured(u64::MAX, 0, 0).is_empty());
        // Trivial thresholds include everything.
        assert_eq!(g.favoured(0, 0, 0).len(), g.len());
    }

    #[test]
    fn favoured_is_a_nontrivial_subset_under_paper_thresholds() {
        let g = SyntheticGitHub::generate(
            12,
            &GitHubParams {
                n_repos: 200,
                ..GitHubParams::default()
            },
        );
        let favoured = g.favoured(500_000_000, 5_000, 5_000);
        assert!(!favoured.is_empty(), "some repos qualify");
        assert!(favoured.len() < g.len(), "not all repos qualify");
    }
}
