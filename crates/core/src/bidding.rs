//! Master-side contest management (Listing 1 of the paper).

use std::collections::HashMap;

use crossbid_crossflow::{
    Allocator, Job, JobId, MasterScheduler, SchedCtx, SchedStats, WorkerId, WorkerPolicy,
    WorkerToMaster,
};
use crossbid_metrics::SchedulerKind;
use crossbid_simcore::{SimDuration, SimTime};

use crate::estimator::BiddingPolicy;

/// Tunables of the bidding protocol.
#[derive(Debug, Clone)]
pub struct BiddingConfig {
    /// How long a contest stays open before the master decides with
    /// whatever bids it has ("the master waits for workers to make
    /// submissions within one second").
    pub window: SimDuration,
    /// §7 future-work optimisation: close the contest as soon as a bid
    /// arrives whose estimate is below this threshold *and* comes from
    /// a worker holding the data locally is approximated by closing on
    /// any bid ≤ `short_circuit_below` seconds. `None` disables it
    /// (the paper's evaluated configuration).
    pub short_circuit_below: Option<f64>,
    /// Run one contest at a time, queueing further jobs until the
    /// current contest closes. The paper leaves contest concurrency
    /// open ("the communication process is asynchronous ... we rely
    /// on time frames to group the messages"); concurrent contests
    /// (the default) are maximally asynchronous but let a burst of
    /// simultaneous jobs all go to the same worker, whose bids cannot
    /// yet reflect the wins it has not been told about. Serializing
    /// matches the threaded runtime's behaviour.
    pub serialize_contests: bool,
}

impl Default for BiddingConfig {
    fn default() -> Self {
        BiddingConfig {
            window: SimDuration::from_secs(1),
            short_circuit_below: None,
            serialize_contests: false,
        }
    }
}

/// Status of a bidding contest (`Bids[job.id].status` in Listing 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContestStatus {
    /// Bidding ongoing.
    Open,
    /// Winner chosen, job assigned.
    Closed,
}

/// State of one contest.
#[derive(Debug)]
pub struct Contest {
    /// The job being contested (held by the master until assignment).
    pub job: Job,
    /// Received bids: `(worker, estimate_secs)` in arrival order.
    pub bids: Vec<(WorkerId, f64)>,
    /// Open/closed.
    pub status: ContestStatus,
    /// When the contest was opened.
    pub opened_at: SimTime,
    /// Token of the window-expiry timer.
    pub timer_token: u64,
}

impl Contest {
    /// `getPreferredWorker`: sort received bids ascending by estimate
    /// (ties broken by worker id for determinism) and return the
    /// winner.
    pub fn preferred_worker(&self) -> Option<WorkerId> {
        // total_cmp keeps the ordering total even if a non-finite
        // estimate slips into the recorded set (NaN sorts above every
        // finite value, so it can never displace a real bid).
        self.bids
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(w, _)| *w)
    }
}

/// The bidding master (Listing 1).
pub struct BiddingMaster {
    cfg: BiddingConfig,
    contests: HashMap<JobId, Contest>,
    timer_to_job: HashMap<u64, JobId>,
    /// Jobs waiting for the current contest to close
    /// (serialize_contests mode only).
    pending: std::collections::VecDeque<Job>,
    stats: SchedStats,
    decided: u64,
}

impl BiddingMaster {
    /// Fresh master state.
    pub fn new(cfg: BiddingConfig) -> Self {
        BiddingMaster {
            cfg,
            contests: HashMap::new(),
            timer_to_job: HashMap::new(),
            pending: std::collections::VecDeque::new(),
            stats: SchedStats::default(),
            decided: 0,
        }
    }

    fn open_contest(&mut self, job: Job, ctx: &mut SchedCtx) {
        let id = job.id;
        let token = ctx.set_timer(self.cfg.window);
        ctx.broadcast_bid_request(job.clone());
        self.timer_to_job.insert(token, id);
        self.contests.insert(
            id,
            Contest {
                job,
                bids: Vec::new(),
                status: ContestStatus::Open,
                opened_at: ctx.now(),
                timer_token: token,
            },
        );
    }

    /// Number of contests decided so far.
    pub fn contests_decided(&self) -> u64 {
        self.decided
    }

    /// Open contests (should drain to zero by the end of a run).
    pub fn open_contests(&self) -> usize {
        self.contests
            .values()
            .filter(|c| c.status == ContestStatus::Open)
            .count()
    }

    /// Close the contest and assign the job (Listing 1 lines 10-13,
    /// plus the fallback path). `timed_out` distinguishes closure by
    /// window expiry from closure by a complete bid set.
    fn close(&mut self, job_id: JobId, timed_out: bool, ctx: &mut SchedCtx) {
        let Some(contest) = self.contests.get_mut(&job_id) else {
            return;
        };
        if contest.status == ContestStatus::Closed {
            return;
        }
        if contest.bids.is_empty() && ctx.worker_count() == 0 {
            // Every worker is down (fault-injection extension): there
            // is nobody to arbitrate to. Keep the contest open and
            // retry after another window; the job waits for a
            // recovery.
            self.timer_to_job.remove(&contest.timer_token);
            let token = ctx.set_timer(self.cfg.window);
            contest.timer_token = token;
            self.timer_to_job.insert(token, job_id);
            return;
        }
        contest.status = ContestStatus::Closed;
        let winner = contest.preferred_worker();
        // Take the job out; the contest record is dropped to keep the
        // map small over long streams.
        let contest = self.contests.remove(&job_id).expect("present above");
        self.timer_to_job.remove(&contest.timer_token);
        self.decided += 1;
        if timed_out {
            self.stats.contests_timed_out += 1;
        }
        let worker = match winner {
            Some(w) => w,
            None => {
                // "assigns the job to an arbitrary node in case none
                // of the workers submitted their estimates".
                self.stats.contests_fallback += 1;
                ctx.arbitrary_worker()
            }
        };
        ctx.assign(worker, contest.job);
        // Serialized mode: the next queued job gets its contest now.
        if self.cfg.serialize_contests && self.contests.is_empty() {
            if let Some(next) = self.pending.pop_front() {
                self.open_contest(next, ctx);
            }
        }
    }
}

impl MasterScheduler for BiddingMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Bidding
    }

    /// `sendJob`: publish for bidding and mark the contest open (or
    /// queue behind the running contest in serialized mode).
    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        if self.cfg.serialize_contests && !self.contests.is_empty() {
            self.pending.push_back(job);
            return;
        }
        self.open_contest(job, ctx);
    }

    /// `receiveBid` + `biddingFinished`.
    fn on_worker_message(&mut self, from: WorkerId, msg: WorkerToMaster, ctx: &mut SchedCtx) {
        match msg {
            WorkerToMaster::Bid { job, estimate_secs } => {
                // A NaN or infinite estimate can never be a meaningful
                // cost; drop it at intake so it neither fills a contest
                // slot nor trips the short-circuit threshold.
                if !estimate_secs.is_finite() {
                    return;
                }
                let all_workers = ctx.worker_count();
                let mut finished = false;
                let mut short_circuit = false;
                if let Some(c) = self.contests.get_mut(&job) {
                    if c.status == ContestStatus::Open {
                        // A worker bids at most once per contest; a
                        // duplicate is ignored entirely — in particular
                        // it must not re-trigger the short-circuit with
                        // an estimate that was never recorded.
                        if !c.bids.iter().any(|(w, _)| *w == from) {
                            c.bids.push((from, estimate_secs));
                            finished = c.bids.len() >= all_workers;
                            if let Some(th) = self.cfg.short_circuit_below {
                                short_circuit = estimate_secs <= th;
                            }
                        }
                    }
                }
                if finished || short_circuit {
                    self.close(job, false, ctx);
                }
            }
            WorkerToMaster::Idle => {
                // Push model: idle notifications carry no information
                // the bidding master needs (backlog arrives in bids).
            }
            WorkerToMaster::Reject { job } => {
                // Assigned jobs cannot be rejected under bidding; a
                // reject indicates a mis-bundled policy. Recover by
                // re-running the contest.
                self.on_job(job, ctx);
            }
        }
    }

    /// Window expiry (`bidding_lasted_for > 1s` branch of
    /// `biddingFinished`).
    fn on_timer(&mut self, token: u64, ctx: &mut SchedCtx) {
        if let Some(job_id) = self.timer_to_job.remove(&token) {
            self.close(job_id, true, ctx);
        }
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

/// The bundled Bidding allocator.
#[derive(Debug, Clone, Default)]
pub struct BiddingAllocator {
    /// Protocol tunables.
    pub cfg: BiddingConfig,
    /// §7 bid learning: workers adjust future bids by the historic
    /// actual/estimated ratio of their completed work.
    pub bid_learning: bool,
}

impl BiddingAllocator {
    /// With the paper's defaults (1 s window, no short-circuit).
    pub fn new() -> Self {
        Self::default()
    }

    /// With a custom window.
    pub fn with_window(window: SimDuration) -> Self {
        BiddingAllocator {
            cfg: BiddingConfig {
                window,
                ..BiddingConfig::default()
            },
            ..Self::default()
        }
    }

    /// With the §7 local short-circuit optimisation enabled.
    pub fn with_short_circuit(threshold_secs: f64) -> Self {
        BiddingAllocator {
            cfg: BiddingConfig {
                short_circuit_below: Some(threshold_secs),
                ..BiddingConfig::default()
            },
            ..Self::default()
        }
    }

    /// With serialized contests (one at a time; see
    /// [`BiddingConfig::serialize_contests`]).
    pub fn with_serialized_contests() -> Self {
        BiddingAllocator {
            cfg: BiddingConfig {
                serialize_contests: true,
                ..BiddingConfig::default()
            },
            ..Self::default()
        }
    }

    /// With §7 bid learning enabled (workers correct future bids by
    /// their observed actual/estimated ratios).
    pub fn with_bid_learning() -> Self {
        BiddingAllocator {
            bid_learning: true,
            ..Self::default()
        }
    }
}

impl Allocator for BiddingAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Bidding
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(BiddingMaster::new(self.cfg.clone()))
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        if self.bid_learning {
            Box::new(crate::learning::AdaptiveBiddingPolicy::new())
        } else {
            Box::new(BiddingPolicy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::scheduler::WorkerHandle;
    use crossbid_crossflow::{Payload, SchedAction, TaskId};
    use crossbid_simcore::RngStream;

    fn mk_job(id: u64) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: None,
            work_bytes: 0,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    fn handles(n: u32) -> Vec<WorkerHandle> {
        (0..n)
            .map(|i| WorkerHandle {
                id: WorkerId(i),
                name: format!("w{i}"),
            })
            .collect()
    }

    struct Harness {
        m: BiddingMaster,
        workers: Vec<WorkerHandle>,
        rng: RngStream,
        token: u64,
    }

    impl Harness {
        fn new(n: u32, cfg: BiddingConfig) -> Self {
            Harness {
                m: BiddingMaster::new(cfg),
                workers: handles(n),
                rng: RngStream::from_seed(1),
                token: 0,
            }
        }

        fn drive<F: FnOnce(&mut BiddingMaster, &mut SchedCtx)>(
            &mut self,
            f: F,
        ) -> Vec<SchedAction> {
            let mut ctx =
                SchedCtx::new(SimTime::ZERO, &self.workers, &mut self.rng, &mut self.token);
            f(&mut self.m, &mut ctx);
            ctx.take_actions()
        }

        fn bid(&mut self, w: u32, job: u64, est: f64) -> Vec<SchedAction> {
            self.drive(|m, ctx| {
                m.on_worker_message(
                    WorkerId(w),
                    WorkerToMaster::Bid {
                        job: JobId(job),
                        estimate_secs: est,
                    },
                    ctx,
                )
            })
        }
    }

    #[test]
    fn contest_opens_with_broadcast_and_timer() {
        let mut h = Harness::new(3, BiddingConfig::default());
        let a = h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        assert_eq!(a.len(), 2);
        assert!(matches!(a[0], SchedAction::Timer { .. }));
        assert!(matches!(a[1], SchedAction::BroadcastBidRequest { .. }));
        assert_eq!(h.m.open_contests(), 1);
    }

    #[test]
    fn full_bid_set_closes_with_lowest_estimate() {
        let mut h = Harness::new(3, BiddingConfig::default());
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        assert!(h.bid(0, 1, 10.0).is_empty());
        assert!(h.bid(1, 1, 4.0).is_empty());
        let a = h.bid(2, 1, 7.0);
        assert_eq!(a.len(), 1);
        match &a[0] {
            SchedAction::Assign { worker, job } => {
                assert_eq!(*worker, WorkerId(1), "lowest estimate wins");
                assert_eq!(job.id, JobId(1));
            }
            other => panic!("expected assign, got {other:?}"),
        }
        assert_eq!(h.m.open_contests(), 0);
        assert_eq!(h.m.contests_decided(), 1);
        assert_eq!(h.m.stats().contests_timed_out, 0);
    }

    #[test]
    fn tie_breaks_deterministically_by_worker_id() {
        let mut h = Harness::new(2, BiddingConfig::default());
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        h.bid(1, 1, 5.0);
        let a = h.bid(0, 1, 5.0);
        match &a[0] {
            SchedAction::Assign { worker, .. } => assert_eq!(*worker, WorkerId(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeout_closes_with_partial_bids() {
        let mut h = Harness::new(3, BiddingConfig::default());
        let a = h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            _ => panic!(),
        };
        h.bid(2, 1, 9.0);
        let a = h.drive(|m, ctx| m.on_timer(token, ctx));
        match &a[0] {
            SchedAction::Assign { worker, .. } => assert_eq!(*worker, WorkerId(2)),
            other => panic!("{other:?}"),
        }
        assert_eq!(h.m.stats().contests_timed_out, 1);
        assert_eq!(h.m.stats().contests_fallback, 0);
    }

    #[test]
    fn timeout_with_no_bids_falls_back_to_arbitrary_worker() {
        let mut h = Harness::new(4, BiddingConfig::default());
        let a = h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            _ => panic!(),
        };
        let a = h.drive(|m, ctx| m.on_timer(token, ctx));
        assert!(matches!(a[0], SchedAction::Assign { .. }));
        assert_eq!(h.m.stats().contests_fallback, 1);
        assert_eq!(h.m.stats().contests_timed_out, 1);
    }

    #[test]
    fn late_bids_after_close_are_ignored() {
        let mut h = Harness::new(2, BiddingConfig::default());
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        h.bid(0, 1, 3.0);
        let a = h.bid(1, 1, 1.0);
        assert_eq!(a.len(), 1, "contest closes on full set");
        // A straggler bid for the decided job does nothing.
        let a = h.bid(1, 1, 0.1);
        assert!(a.is_empty());
        assert_eq!(h.m.contests_decided(), 1);
    }

    #[test]
    fn duplicate_bids_from_one_worker_count_once() {
        let mut h = Harness::new(2, BiddingConfig::default());
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        let a = h.bid(0, 1, 3.0);
        assert!(a.is_empty());
        let a = h.bid(0, 1, 2.0);
        assert!(a.is_empty(), "same worker cannot complete the set alone");
    }

    #[test]
    fn stale_timer_is_harmless() {
        let mut h = Harness::new(2, BiddingConfig::default());
        let a = h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            _ => panic!(),
        };
        h.bid(0, 1, 3.0);
        h.bid(1, 1, 2.0); // closes
        let a = h.drive(|m, ctx| m.on_timer(token, ctx));
        assert!(a.is_empty());
        assert_eq!(h.m.stats().contests_timed_out, 0);
    }

    #[test]
    fn concurrent_contests_are_independent() {
        let mut h = Harness::new(2, BiddingConfig::default());
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        h.drive(|m, ctx| m.on_job(mk_job(2), ctx));
        assert_eq!(h.m.open_contests(), 2);
        h.bid(0, 1, 5.0);
        h.bid(0, 2, 1.0);
        let a1 = h.bid(1, 1, 2.0);
        let a2 = h.bid(1, 2, 9.0);
        match (&a1[0], &a2[0]) {
            (
                SchedAction::Assign {
                    worker: w1,
                    job: j1,
                },
                SchedAction::Assign {
                    worker: w2,
                    job: j2,
                },
            ) => {
                assert_eq!((j1.id, *w1), (JobId(1), WorkerId(1)));
                assert_eq!((j2.id, *w2), (JobId(2), WorkerId(0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn short_circuit_closes_on_local_bid() {
        let mut h = Harness::new(
            3,
            BiddingConfig {
                window: SimDuration::from_secs(1),
                short_circuit_below: Some(2.0),
                ..BiddingConfig::default()
            },
        );
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        let a = h.bid(2, 1, 1.5);
        assert_eq!(a.len(), 1, "sub-threshold bid decides immediately");
        match &a[0] {
            SchedAction::Assign { worker, .. } => assert_eq!(*worker, WorkerId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serialized_contests_queue_behind_the_open_one() {
        let mut h = Harness::new(
            2,
            BiddingConfig {
                serialize_contests: true,
                ..BiddingConfig::default()
            },
        );
        let a = h.drive(|m, ctx| {
            m.on_job(mk_job(1), ctx);
            m.on_job(mk_job(2), ctx);
        });
        // Only job 1's contest opened (one broadcast + one timer).
        let broadcasts = a
            .iter()
            .filter(|x| matches!(x, SchedAction::BroadcastBidRequest { .. }))
            .count();
        assert_eq!(broadcasts, 1);
        assert_eq!(h.m.open_contests(), 1);
        // Closing job 1 opens job 2 in the same action batch.
        h.bid(0, 1, 3.0);
        let a = h.bid(1, 1, 2.0);
        assert!(
            matches!(a[0], SchedAction::Assign { .. }),
            "job 1 assigned: {a:?}"
        );
        assert!(
            a.iter()
                .any(|x| matches!(x, SchedAction::BroadcastBidRequest { .. })),
            "job 2's contest opened: {a:?}"
        );
        assert_eq!(h.m.open_contests(), 1);
    }

    #[test]
    fn preferred_worker_on_empty_contest_is_none() {
        let c = Contest {
            job: mk_job(1),
            bids: vec![],
            status: ContestStatus::Open,
            opened_at: SimTime::ZERO,
            timer_token: 0,
        };
        assert_eq!(c.preferred_worker(), None);
    }

    #[test]
    fn nan_bid_is_dropped_at_intake() {
        let mut h = Harness::new(2, BiddingConfig::default());
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        // A NaN estimate must not fill a contest slot...
        assert!(h.bid(0, 1, f64::NAN).is_empty());
        assert!(h.bid(1, 1, 7.0).is_empty(), "set must not be complete yet");
        // ...and the eventual winner is the worker with the real bid.
        let a = h.bid(0, 1, 9.0);
        match &a[0] {
            SchedAction::Assign { worker, .. } => assert_eq!(*worker, WorkerId(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infinite_bid_cannot_win_or_complete_a_set() {
        let mut h = Harness::new(2, BiddingConfig::default());
        let a = h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            _ => panic!(),
        };
        assert!(h.bid(0, 1, f64::INFINITY).is_empty());
        assert!(h.bid(1, 1, f64::NEG_INFINITY).is_empty());
        // No recorded bids: window expiry must take the fallback path,
        // never assign based on a non-finite estimate.
        let a = h.drive(|m, ctx| m.on_timer(token, ctx));
        assert!(matches!(a[0], SchedAction::Assign { .. }));
        assert_eq!(h.m.stats().contests_fallback, 1);
    }

    #[test]
    fn nan_bid_does_not_trip_short_circuit() {
        let mut h = Harness::new(
            3,
            BiddingConfig {
                short_circuit_below: Some(2.0),
                ..BiddingConfig::default()
            },
        );
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        // NaN <= th is false, but the guard must hold at intake too.
        assert!(h.bid(0, 1, f64::NAN).is_empty());
        assert_eq!(h.m.open_contests(), 1);
    }

    #[test]
    fn duplicate_bid_cannot_short_circuit_with_stale_estimate() {
        let mut h = Harness::new(
            2,
            BiddingConfig {
                short_circuit_below: Some(2.0),
                ..BiddingConfig::default()
            },
        );
        h.drive(|m, ctx| m.on_job(mk_job(1), ctx));
        // Recorded estimate 5.0: above the threshold, contest stays open.
        assert!(h.bid(0, 1, 5.0).is_empty());
        // Duplicate bid below the threshold is NOT recorded, so it must
        // not close the contest either (the recorded estimate is 5.0).
        assert!(
            h.bid(0, 1, 1.0).is_empty(),
            "unrecorded duplicate bid must not short-circuit"
        );
        assert_eq!(h.m.open_contests(), 1);
        // The other worker's bid completes the set and wins on merit.
        let a = h.bid(1, 1, 3.0);
        match &a[0] {
            SchedAction::Assign { worker, .. } => assert_eq!(*worker, WorkerId(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn preferred_worker_total_order_survives_nan_in_recorded_set() {
        // Defence in depth: even if a NaN were recorded, total_cmp
        // sorts it above every finite estimate so it cannot win.
        let c = Contest {
            job: mk_job(1),
            bids: vec![(WorkerId(0), f64::NAN), (WorkerId(1), 4.0)],
            status: ContestStatus::Open,
            opened_at: SimTime::ZERO,
            timer_token: 0,
        };
        assert_eq!(c.preferred_worker(), Some(WorkerId(1)));
    }
}
