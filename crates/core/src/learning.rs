//! Bid learning — the paper's §7 future work:
//!
//! "providing more intelligence for the worker nodes by enabling them
//! to keep the historic data of their bids and completed work and use
//! this data to learn from it and adjust their future bids."
//!
//! [`BidCorrector`] keeps an exponentially weighted moving average of
//! the ratio `actual / estimated` over a worker's completed jobs and
//! scales future bid estimates by it. A worker whose real machine is
//! systematically slower (or faster) than its configured speeds —
//! e.g. one with a throttled noise profile — thus converges to honest
//! bids even when §6.4's per-speed learning is disabled or the bias
//! sits outside the speed model (lock contention, I/O scheduling,
//! co-tenants).

use crossbid_crossflow::{JobView, WorkerPolicy, WorkerView};
use crossbid_simcore::Ewma;

use crate::estimator::estimate_bid;

/// EWMA-based estimate corrector over completed jobs.
#[derive(Debug, Clone)]
pub struct BidCorrector {
    ewma: Ewma,
}

impl Default for BidCorrector {
    fn default() -> Self {
        Self::new(0.2)
    }
}

impl BidCorrector {
    /// `alpha` is the EWMA weight of each new observation (0 < α ≤ 1).
    pub fn new(alpha: f64) -> Self {
        BidCorrector {
            ewma: Ewma::new(alpha),
        }
    }

    /// Fold in one completed job. Degenerate observations (zero or
    /// non-finite estimates/actuals) are ignored; ratios are clamped
    /// to `[0.1, 10]` so one outlier cannot poison the factor.
    pub fn observe(&mut self, est_secs: f64, actual_secs: f64) {
        if !(est_secs.is_finite() && actual_secs.is_finite()) || est_secs <= 0.0 {
            return;
        }
        self.ewma.push((actual_secs / est_secs).clamp(0.1, 10.0));
    }

    /// The current correction factor (1.0 before any observation).
    pub fn factor(&self) -> f64 {
        self.ewma.value_or(1.0)
    }

    /// Completed jobs folded in.
    pub fn observations(&self) -> u64 {
        self.ewma.count()
    }

    /// Apply the correction to an estimate.
    pub fn correct(&self, est_secs: f64) -> f64 {
        est_secs * self.factor()
    }
}

/// The learning variant of the worker-side bidding policy: bids are
/// Listing 2's estimate scaled by the worker's own historic
/// actual/estimated ratio.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveBiddingPolicy {
    corrector: BidCorrector,
}

impl AdaptiveBiddingPolicy {
    /// With the default EWMA weight (α = 0.2).
    pub fn new() -> Self {
        Self::default()
    }

    /// With a custom EWMA weight.
    pub fn with_alpha(alpha: f64) -> Self {
        AdaptiveBiddingPolicy {
            corrector: BidCorrector::new(alpha),
        }
    }

    /// Inspect the underlying corrector.
    pub fn corrector(&self) -> &BidCorrector {
        &self.corrector
    }
}

impl WorkerPolicy for AdaptiveBiddingPolicy {
    fn accept_offer(&mut self, _view: &WorkerView, _job: &JobView) -> bool {
        true
    }

    fn bid(&mut self, view: &WorkerView, _job: &JobView) -> Option<f64> {
        Some(self.corrector.correct(estimate_bid(view).total()))
    }

    fn on_job_finished(&mut self, est_secs: f64, actual_secs: f64) {
        self.corrector.observe(est_secs, actual_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::{JobId, WorkerId};
    use crossbid_simcore::SimTime;

    fn view(backlog: f64, fetch: f64, proc: f64) -> WorkerView {
        WorkerView {
            id: WorkerId(0),
            now: SimTime::ZERO,
            backlog_secs: backlog,
            has_data: fetch == 0.0,
            declined_before: false,
            est_fetch_secs: fetch,
            est_proc_secs: proc,
            queue_len: 0,
        }
    }

    #[test]
    fn corrector_starts_neutral() {
        let c = BidCorrector::default();
        assert_eq!(c.factor(), 1.0);
        assert_eq!(c.correct(5.0), 5.0);
        assert_eq!(c.observations(), 0);
    }

    #[test]
    fn corrector_converges_to_true_ratio() {
        let mut c = BidCorrector::new(0.3);
        for _ in 0..100 {
            // Machine is consistently 2x slower than estimated.
            c.observe(10.0, 20.0);
        }
        assert!((c.factor() - 2.0).abs() < 1e-6, "factor {}", c.factor());
        assert!((c.correct(7.0) - 14.0).abs() < 1e-6);
    }

    #[test]
    fn first_observation_jumps_then_smooths() {
        let mut c = BidCorrector::new(0.5);
        c.observe(10.0, 30.0); // ratio 3
        assert!((c.factor() - 3.0).abs() < 1e-12);
        c.observe(10.0, 10.0); // ratio 1
        assert!((c.factor() - 2.0).abs() < 1e-12, "EWMA midpoint");
    }

    #[test]
    fn outliers_are_clamped() {
        let mut c = BidCorrector::new(1.0);
        c.observe(1e-9, 1e9);
        assert!(c.factor() <= 10.0);
        c.observe(1e9, 1e-9);
        assert!(c.factor() >= 0.1);
    }

    #[test]
    fn garbage_observations_ignored() {
        let mut c = BidCorrector::default();
        c.observe(0.0, 5.0);
        c.observe(f64::NAN, 5.0);
        c.observe(5.0, f64::INFINITY);
        assert_eq!(c.observations(), 0);
        assert_eq!(c.factor(), 1.0);
    }

    #[test]
    fn adaptive_policy_scales_bids() {
        let mut p = AdaptiveBiddingPolicy::with_alpha(1.0);
        let jv = JobView {
            id: JobId(1),
            resource_bytes: 0,
        };
        let v = view(2.0, 3.0, 5.0); // plain bid = 10
        assert_eq!(p.bid(&v, &jv), Some(10.0));
        // Jobs actually take 1.5x the estimate on this machine.
        p.on_job_finished(10.0, 15.0);
        assert_eq!(p.bid(&v, &jv), Some(15.0));
        assert!((p.corrector().factor() - 1.5).abs() < 1e-12);
    }
}
