//! # crossbid-core — the Bidding Scheduler
//!
//! This crate implements the paper's contribution (§5): a
//! decentralized, data-locality-aware job allocation mechanism in
//! which "the master node still broadcasts incoming jobs, however ...
//! the workers create offers and bid for work. Their bids include
//! estimates on when they *estimate* they can get that job done."
//!
//! The implementation follows the paper's two pseudo-code listings
//! exactly:
//!
//! * [`BiddingMaster`] is Listing 1 — it opens a contest per incoming
//!   job, records bids, and closes the contest when either every
//!   active worker has bid or the contest has been open longer than
//!   the window (1 second by default); the winner is the lowest
//!   estimate; if nobody bid in time, the job goes "to an arbitrary
//!   node".
//! * [`BiddingPolicy`] is Listing 2 — a bid is
//!   `totalCostOfUnfinishedJobs() + estimateDataTransferTime(job) +
//!   estimateProcessingTime(job)`, with the transfer estimate zero
//!   when the worker already holds the resource.
//!
//! [`BiddingConfig`] exposes the knobs the paper discusses: the
//! contest window (overhead vs. allocation quality), and the §7
//! future-work *local short-circuit* optimisation ("minimizing the
//! bidding overhead for highly local jobs") which closes a contest
//! early as soon as a zero-transfer bid arrives.

//! ```
//! use crossbid_core::BiddingAllocator;
//! use crossbid_crossflow::{
//!     run_workflow, Arrival, Cluster, EngineConfig, JobSpec, Payload,
//!     ResourceRef, RunMeta, WorkerSpec, Workflow,
//! };
//! use crossbid_simcore::SimTime;
//! use crossbid_storage::ObjectId;
//!
//! let specs: Vec<WorkerSpec> =
//!     (0..3).map(|i| WorkerSpec::builder(format!("w{i}")).build()).collect();
//! let mut workflow = Workflow::new();
//! let scan = workflow.add_sink("scan");
//! let arrivals: Vec<Arrival> = (0..6)
//!     .map(|i| Arrival {
//!         at: SimTime::from_secs(i * 10),
//!         spec: JobSpec::scanning(
//!             scan,
//!             ResourceRef { id: ObjectId(i % 2), bytes: 100_000_000 },
//!             Payload::Index(i),
//!         ),
//!     })
//!     .collect();
//!
//! let cfg = EngineConfig::ideal();
//! let mut cluster = Cluster::new(&specs, &cfg);
//! let out = run_workflow(
//!     &mut cluster, &mut workflow, &BiddingAllocator::new(), arrivals, &cfg,
//!     &RunMeta::default(),
//! );
//! assert_eq!(out.record.jobs_completed, 6);
//! // Two repositories, fetched once each: locality won 4 contests.
//! assert_eq!(out.record.cache_misses, 2);
//! assert_eq!(out.record.cache_hits, 4);
//! ```

pub mod bidding;
pub mod estimator;
pub mod learning;

pub use bidding::{BiddingAllocator, BiddingConfig, BiddingMaster, Contest, ContestStatus};
pub use estimator::{estimate_bid, BidBreakdown, BiddingPolicy};
pub use learning::{AdaptiveBiddingPolicy, BidCorrector};
