//! Worker-side bid estimation (Listing 2 of the paper).

use crossbid_crossflow::{JobView, WorkerPolicy, WorkerView};

/// The three components of a bid, kept separate for inspection and
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidBreakdown {
    /// `totalCostOfUnfinishedJobs()` — queued + in-flight work,
    /// seconds (Listing 2 line 2).
    pub backlog_secs: f64,
    /// `estimateDataTransferTime(job)` — zero when the resource is in
    /// the local store (Listing 2 line 4).
    pub transfer_secs: f64,
    /// `estimateProcessingTime(job)` (Listing 2 line 5).
    pub processing_secs: f64,
}

impl BidBreakdown {
    /// The bid amount transmitted to the master.
    pub fn total(&self) -> f64 {
        self.backlog_secs + self.transfer_secs + self.processing_secs
    }

    /// True iff this bid reflects a fully local job (no transfer).
    pub fn is_local(&self) -> bool {
        self.transfer_secs == 0.0
    }
}

/// Compute the bid for a job given the worker's current view. The
/// engine precomputes all estimates with *believed* speeds (nominal
/// spec speeds, or §6.4 historic averages when speed learning is on) —
/// the noise applied during actual execution is invisible here, which
/// is exactly why "bidding costs differed from actual execution
/// times" in the paper's evaluation.
pub fn estimate_bid(view: &WorkerView) -> BidBreakdown {
    BidBreakdown {
        backlog_secs: view.backlog_secs,
        transfer_secs: view.est_fetch_secs,
        processing_secs: view.est_proc_secs,
    }
}

/// The worker-side policy of the Bidding Scheduler: always bids, never
/// receives plain offers (the bidding master assigns unconditionally),
/// but accepts them defensively if one arrives.
#[derive(Debug, Default, Clone, Copy)]
pub struct BiddingPolicy;

impl WorkerPolicy for BiddingPolicy {
    fn accept_offer(&mut self, _view: &WorkerView, _job: &JobView) -> bool {
        // The bidding protocol assigns jobs after a won contest; an
        // assigned job must be taken ("it is bound to accept").
        true
    }

    fn bid(&mut self, view: &WorkerView, _job: &JobView) -> Option<f64> {
        Some(estimate_bid(view).total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::{JobId, WorkerId};
    use crossbid_simcore::SimTime;

    fn view(backlog: f64, fetch: f64, proc: f64) -> WorkerView {
        WorkerView {
            id: WorkerId(0),
            now: SimTime::ZERO,
            backlog_secs: backlog,
            has_data: fetch == 0.0,
            declined_before: false,
            est_fetch_secs: fetch,
            est_proc_secs: proc,
            queue_len: 0,
        }
    }

    fn jv() -> JobView {
        JobView {
            id: JobId(1),
            resource_bytes: 1000,
        }
    }

    #[test]
    fn bid_is_sum_of_components() {
        let b = estimate_bid(&view(10.0, 5.0, 2.0));
        assert_eq!(b.total(), 17.0);
        assert!(!b.is_local());
    }

    #[test]
    fn local_job_skips_transfer() {
        let b = estimate_bid(&view(3.0, 0.0, 2.0));
        assert_eq!(b.total(), 5.0);
        assert!(b.is_local());
    }

    #[test]
    fn idle_local_worker_bids_minimum() {
        // "Minimum expenses are incurred when the worker possesses the
        // data stored locally, which leads to lower time estimates and
        // subsequently increases the chances of winning the bid."
        let local_idle = estimate_bid(&view(0.0, 0.0, 2.0)).total();
        let remote_idle = estimate_bid(&view(0.0, 8.0, 2.0)).total();
        let local_busy = estimate_bid(&view(20.0, 0.0, 2.0)).total();
        assert!(local_idle < remote_idle);
        assert!(remote_idle < local_busy, "backlog can outweigh locality");
    }

    #[test]
    fn policy_always_bids_and_accepts() {
        let mut p = BiddingPolicy;
        let v = view(1.0, 2.0, 3.0);
        assert_eq!(p.bid(&v, &jv()), Some(6.0));
        assert!(p.accept_offer(&v, &jv()));
    }
}
