//! End-to-end behaviour of the Bidding Scheduler on the simulation
//! engine — the qualitative properties §5 and §6.3.2 claim.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec, Payload, ResourceRef,
    RunMeta, TaskId, WorkerId, WorkerSpec, Workflow,
};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;

fn res(id: u64, mb: u64) -> ResourceRef {
    ResourceRef {
        id: ObjectId(id),
        bytes: mb * 1_000_000,
    }
}

fn equal_specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(20.0)
                .build()
        })
        .collect()
}

fn sink_workflow() -> (Workflow, TaskId) {
    let mut wf = Workflow::new();
    let t = wf.add_sink("scan");
    (wf, t)
}

fn arrivals(task: TaskId, jobs: &[(u64, u64)], spacing_ms: u64) -> Vec<Arrival> {
    jobs.iter()
        .enumerate()
        .map(|(i, (rid, mb))| Arrival {
            at: SimTime::from_millis(i as u64 * spacing_ms),
            spec: JobSpec::scanning(task, res(*rid, *mb), Payload::Index(*rid)),
        })
        .collect()
}

/// Ideal config but with a real (non-zero) bid window so contests take
/// effect deterministically.
fn cfg() -> EngineConfig {
    EngineConfig::ideal()
}

#[test]
fn lowest_bidder_wins_and_jobs_complete() {
    let mut cluster = Cluster::new(&equal_specs(3), &cfg());
    let (mut wf, task) = sink_workflow();
    let jobs: Vec<(u64, u64)> = (0..12).map(|i| (i, 100)).collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(task, &jobs, 50),
        &cfg(),
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 12);
    assert_eq!(r.cache_misses, 12, "all repos distinct, cold caches");
    assert_eq!(r.contests_fallback, 0, "zero-latency bids always arrive");
    // With instant control plane every contest closes on the full bid
    // set, never the window.
    assert_eq!(r.contests_timed_out, 0);
}

#[test]
fn repeat_jobs_route_to_cache_owner() {
    // Unlike the Baseline (which redundantly clones when the owner is
    // briefly busy), bidding weighs waiting for the owner against
    // downloading: for large repos, waiting wins.
    let mut cluster = Cluster::new(&equal_specs(2), &cfg());
    cluster
        .node_mut(WorkerId(0))
        .store
        .insert(ObjectId(1), 500_000_000, SimTime::ZERO);
    let (mut wf, task) = sink_workflow();
    // Back-to-back jobs on the same 500 MB repo: scan = 5 s each,
    // download would be 50 s. The owner's growing backlog stays below
    // the transfer estimate, so all jobs go to worker 0.
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(task, &[(1, 500), (1, 500), (1, 500), (1, 500)], 10),
        &cfg(),
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 4);
    assert_eq!(r.cache_misses, 0, "no redundant clone");
    assert_eq!(r.data_load_mb, 0.0);
    assert!(!cluster.node(WorkerId(1)).holds(ObjectId(1)));
}

#[test]
fn redundant_clone_happens_only_when_it_pays() {
    // "redundant resources ... occur only to accelerate overall
    // execution": if the owner's queue cost exceeds download cost,
    // another worker wins and clones.
    let mut cluster = Cluster::new(&equal_specs(2), &cfg());
    cluster
        .node_mut(WorkerId(0))
        .store
        .insert(ObjectId(1), 100_000_000, SimTime::ZERO);
    let (mut wf, task) = sink_workflow();
    // 100 MB repo: scan 1 s, download 10 s. Eleven back-to-back jobs:
    // by the ~11th job worker 0's backlog (> 10 s) exceeds worker 1's
    // download+scan (11 s), so worker 1 starts winning and clones once;
    // afterwards both hold the repo.
    let jobs: Vec<(u64, u64)> = (0..16).map(|_| (1, 100)).collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(task, &jobs, 1),
        &cfg(),
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 16);
    assert_eq!(
        r.cache_misses, 1,
        "exactly one beneficial redundant clone, got {}",
        r.cache_misses
    );
    assert!(cluster.node(WorkerId(1)).holds(ObjectId(1)));
}

#[test]
fn heterogeneity_directs_work_to_fast_workers() {
    // One fast, one slow: the slow worker's higher estimates keep the
    // compute-intensive jobs away from it ("avoiding the prolongation
    // of execution due to slower nodes carrying excessive workloads").
    let specs = vec![
        WorkerSpec::builder("fast")
            .net_mbps(100.0)
            .rw_mbps(500.0)
            .storage_gb(50.0)
            .build(),
        WorkerSpec::builder("slow")
            .net_mbps(5.0)
            .rw_mbps(25.0)
            .storage_gb(50.0)
            .build(),
    ];
    let mut cluster = Cluster::new(&specs, &cfg());
    let (mut wf, task) = sink_workflow();
    let jobs: Vec<(u64, u64)> = (0..20).map(|i| (i, 200)).collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(task, &jobs, 100),
        &cfg(),
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 20);
    let fast_cached = cluster.node(WorkerId(0)).cached_objects();
    let slow_cached = cluster.node(WorkerId(1)).cached_objects();
    assert!(
        fast_cached > slow_cached * 2,
        "fast worker should take the lion's share: fast={fast_cached} slow={slow_cached}"
    );
}

#[test]
fn bidding_beats_baseline_on_repetitive_large_workload() {
    // The paper's headline: on repetitive large-repository workloads
    // the Bidding Scheduler yields fewer misses, less data and faster
    // completion than the Baseline.
    let run = |alloc: &dyn crossbid_crossflow::Allocator| {
        let config = EngineConfig::default();
        // Four average workers plus one severely slow one (the paper's
        // `one-slow` shape).
        let mut specs = equal_specs(4);
        specs.push(
            WorkerSpec::builder("slow")
                .net_mbps(2.0)
                .rw_mbps(10.0)
                .storage_gb(20.0)
                .build(),
        );
        let mut cluster = Cluster::new(&specs, &config);
        let (mut wf, task) = sink_workflow();
        // 80% of jobs need repo 1 (large), the rest are distinct.
        let jobs: Vec<(u64, u64)> = (0..40)
            .map(|i| if i % 5 != 0 { (1, 800) } else { (100 + i, 200) })
            .collect();
        let meta = RunMeta {
            seed: 99,
            ..RunMeta::default()
        };
        run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            arrivals(task, &jobs, 4000),
            &config,
            &meta,
        )
        .record
    };
    let bid = run(&BiddingAllocator::new());
    let base = run(&BaselineAllocator);
    assert!(
        bid.cache_misses < base.cache_misses,
        "bidding {} vs baseline {} misses",
        bid.cache_misses,
        base.cache_misses
    );
    assert!(
        bid.data_load_mb < base.data_load_mb,
        "bidding {} vs baseline {} MB",
        bid.data_load_mb,
        base.data_load_mb
    );
    assert!(
        bid.makespan_secs < base.makespan_secs,
        "bidding {} vs baseline {} s",
        bid.makespan_secs,
        base.makespan_secs
    );
}

#[test]
fn window_timeout_engages_with_slow_control_plane() {
    // Control-plane latency larger than the window: bids arrive after
    // expiry, so contests time out and fall back.
    let config = EngineConfig {
        control: crossbid_net::ControlPlane::new(
            SimDuration::from_millis(800),
            SimDuration::from_millis(500),
        ),
        ..EngineConfig::default()
    };
    let alloc = BiddingAllocator::with_window(SimDuration::from_millis(100));
    let mut cluster = Cluster::new(&equal_specs(3), &config);
    let (mut wf, task) = sink_workflow();
    let jobs: Vec<(u64, u64)> = (0..6).map(|i| (i, 50)).collect();
    let meta = RunMeta {
        seed: 3,
        ..RunMeta::default()
    };
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &alloc,
        arrivals(task, &jobs, 10),
        &config,
        &meta,
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 6, "fallback still completes everything");
    assert_eq!(r.contests_timed_out, 6);
    assert_eq!(r.contests_fallback, 6);
}

#[test]
fn short_circuit_reduces_decision_latency_for_local_jobs() {
    // §7 future work: close contests early on an essentially-local
    // bid. With a warm cache, the short-circuit variant should finish
    // a stream of tiny local jobs no later than the full-window
    // protocol under a laggy control plane.
    let mut config = EngineConfig::ideal();
    config.control =
        crossbid_net::ControlPlane::new(SimDuration::from_millis(150), SimDuration::ZERO);
    let run = |alloc: &dyn crossbid_crossflow::Allocator| {
        let mut cluster = Cluster::new(&equal_specs(3), &config);
        for w in 0..3 {
            cluster
                .node_mut(WorkerId(w))
                .store
                .insert(ObjectId(1), 10_000_000, SimTime::ZERO);
        }
        let (mut wf, task) = sink_workflow();
        let jobs: Vec<(u64, u64)> = (0..10).map(|_| (1, 10)).collect();
        run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            arrivals(task, &jobs, 10),
            &config,
            &RunMeta::default(),
        )
        .record
    };
    let normal = run(&BiddingAllocator::new());
    let sc = run(&BiddingAllocator::with_short_circuit(1.0));
    assert_eq!(normal.jobs_completed, 10);
    assert_eq!(sc.jobs_completed, 10);
    assert!(
        sc.makespan_secs <= normal.makespan_secs + 1e-9,
        "short-circuit {} vs normal {}",
        sc.makespan_secs,
        normal.makespan_secs
    );
}

#[test]
fn bidding_runs_are_deterministic() {
    let run = || {
        let config = EngineConfig::default();
        let mut cluster = Cluster::new(&equal_specs(4), &config);
        let (mut wf, task) = sink_workflow();
        let jobs: Vec<(u64, u64)> = (0..15).map(|i| (i % 4, 150)).collect();
        let meta = RunMeta {
            seed: 1234,
            ..RunMeta::default()
        };
        run_workflow(
            &mut cluster,
            &mut wf,
            &BiddingAllocator::new(),
            arrivals(task, &jobs, 200),
            &config,
            &meta,
        )
        .record
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    assert_eq!(a.data_load_mb.to_bits(), b.data_load_mb.to_bits());
    assert_eq!(a.cache_misses, b.cache_misses);
    assert_eq!(a.control_messages, b.control_messages);
}

#[test]
fn bid_learning_routes_around_a_secretly_throttled_worker() {
    // §7 future work: one worker's *actual* speeds are a third of its
    // configured speeds (its noise override), and §6.4 speed learning
    // is off, so its Listing-2 bids look just as good as everyone
    // else's. The backlog term self-corrects somewhat (slow workers
    // keep their estimated backlog longer), but each time the
    // throttled worker drains it wins another job it should not have.
    // With bid learning, its corrected bids stay high after the first
    // few completions and the tail disappears.
    let run = |alloc: &dyn crossbid_crossflow::Allocator| {
        let mut specs = equal_specs(2);
        specs.push(
            WorkerSpec::builder("throttled")
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(20.0)
                .noise(crossbid_net::NoiseModel::Uniform { lo: 0.3, hi: 0.32 })
                .build(),
        );
        let config = EngineConfig::ideal();
        let mut cluster = Cluster::new(&specs, &config);
        let (mut wf, task) = sink_workflow();
        // CPU-free scanning jobs, sustained moderate pressure so the
        // stream lasts long enough for feedback to matter.
        let jobs: Vec<(u64, u64)> = (0..40).map(|i| (i, 400)).collect();
        let meta = RunMeta {
            seed: 77,
            ..RunMeta::default()
        };
        let out = run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            arrivals(task, &jobs, 15_000),
            &config,
            &meta,
        );
        let throttled_share = out
            .assignments
            .iter()
            .filter(|(_, w)| *w == WorkerId(2))
            .count();
        (out.record.makespan_secs, throttled_share)
    };
    let (t_plain, share_plain) = run(&BiddingAllocator::new());
    let (t_learn, share_learn) = run(&BiddingAllocator::with_bid_learning());
    assert!(
        share_learn < share_plain,
        "learning should starve the throttled worker: {share_learn} vs {share_plain}"
    );
    assert!(
        t_learn <= t_plain,
        "learning should not slow the run down: {t_learn:.1}s vs {t_plain:.1}s"
    );
}

#[test]
fn serialized_contests_spread_simultaneous_bursts() {
    // A burst of jobs arriving at the same instant: with concurrent
    // contests every bid is computed from the same (stale) backlog, so
    // the tie-break sends the whole burst to worker 0. Serialized
    // contests let each assignment land before the next contest's bid
    // requests go out, spreading the burst.
    let burst: Vec<Arrival> = (0..6)
        .map(|i| Arrival {
            at: SimTime::ZERO,
            spec: JobSpec::compute(TaskId(0), 10.0, Payload::Index(i)),
        })
        .collect();
    let run = |alloc: &dyn crossbid_crossflow::Allocator| {
        let config = EngineConfig::ideal();
        let mut cluster = Cluster::new(&equal_specs(3), &config);
        let (mut wf, task) = sink_workflow();
        assert_eq!(task, TaskId(0));
        let out = run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            burst.clone(),
            &config,
            &RunMeta::default(),
        );
        let w0 = out
            .assignments
            .iter()
            .filter(|(_, w)| *w == WorkerId(0))
            .count();
        (out.record.makespan_secs, w0)
    };
    let (t_async, w0_async) = run(&BiddingAllocator::new());
    let (t_serial, w0_serial) = run(&BiddingAllocator::with_serialized_contests());
    assert_eq!(w0_async, 6, "concurrent contests herd to worker 0");
    assert!(
        w0_serial <= 3,
        "serialized contests spread the burst (w0 got {w0_serial})"
    );
    assert!(
        t_serial < t_async,
        "spreading wins: {t_serial:.1}s vs {t_async:.1}s"
    );
}
